#include "core/quda_api.h"

#include "blas/blas.h"
#include "core/partition.h"
#include "core/provenance.h"
#include "dirac/clover_term.h"
#include "dirac/transfer.h"
#include "parallel/parallel_op.h"
#include "sim/event_sim.h"
#include "solvers/bicgstab.h"
#include "solvers/cg.h"
#include "solvers/checkpoint.h"
#include "solvers/mixed_precision.h"
#include "trace/telemetry.h"
#include "trace/trace_export.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace quda {

namespace {

using comm::GridTopology;
using core::local_geometry;
using core::merge_spinor;
using core::slice_clover;
using core::slice_gauge;
using core::slice_spinor;
using parallel::ParallelWilsonCloverOp;

// resolve the InvertParams grid against the cluster: all-ones means the
// paper's 1-D time slicing sized to the rank count
GridTopology resolve_topology(const InvertParams& p, int n_ranks) {
  const bool trivial = p.grid[0] == 1 && p.grid[1] == 1 && p.grid[2] == 1 && p.grid[3] == 1;
  GridTopology topo = trivial ? GridTopology::time_only(n_ranks)
                              : GridTopology{{p.grid[0], p.grid[1], p.grid[2], p.grid[3]}};
  if (topo.num_ranks() != n_ranks)
    throw std::invalid_argument("rank grid does not match the cluster size");
  return topo;
}
using sim::RankContext;
using sim::VirtualCluster;

// everything a rank needs to build its operators at one precision
template <typename P> struct RankFields {
  GaugeField<P> gauge;
  CloverField<P> clover;
  CloverField<P> clover_inv;

  RankFields(comm::QmpGrid& grid, const Geometry& lg, const HostGaugeField& lu,
             const HostCloverField& lt, const HostCloverField& ltinv, Reconstruct recon)
      : gauge(upload_gauge<P>(lu, recon)),
        clover(upload_clover<P>(lt)),
        clover_inv(upload_clover<P>(ltinv)) {
    // register the footprint with the simulated device: this is where a
    // too-large problem fails with bad_alloc, as on the real cards
    auto& dev = grid.context().device();
    dev.malloc_bytes(gauge.device_bytes());
    dev.malloc_bytes(clover.device_bytes() + clover_inv.device_bytes());
    parallel::exchange_gauge_ghost<P>(grid, lg, &gauge, Execution::Real);
  }
};

// a device spinor registered with the allocator, shaped for the grid's
// decomposition
template <typename P>
SpinorField<P> make_vector(comm::QmpGrid& grid, const Geometry& lg) {
  SpinorField<P> f(lg, grid.topology().partition_mask());
  grid.context().device().malloc_bytes(f.device_bytes());
  return f;
}

struct RankOutcome {
  SolverStats stats;
  HostSpinorField x_local;
  double effective_flops = 0;
  std::int64_t bytes_peak = 0;
  std::int64_t gauge_bytes = 0;
  double setup_done_us = 0;
  double solve_done_us = 0;
  // checkpoint/restart outcome (DESIGN.md §10)
  int recovery_epochs = 0;          // completed cluster recovery epochs
  std::uint64_t ckpt_digest = 0;    // last committed checkpoint digest
  std::vector<CheckpointEvent> ckpt_log;
};

// the solver vectors BiCGstab allocates internally are charged here so the
// device-memory gate reflects the full solve footprint
template <typename P>
void charge_solver_vectors(comm::QmpGrid& grid, const Geometry& lg, int count) {
  SpinorField<P> probe(lg, grid.topology().partition_mask());
  grid.context().device().malloc_bytes(count * probe.device_bytes());
}

SolverParams solver_params(const InvertParams& p) {
  SolverParams sp;
  sp.tol = p.tol;
  sp.delta = p.delta;
  sp.max_iter = p.max_iter;
  sp.verbose = p.verbose;
  sp.sdc_threshold = p.sdc_threshold;
  sp.max_rollbacks = p.max_rollbacks;
  sp.max_breakdown_restarts = p.max_breakdown_restarts;
  return sp;
}

template <typename POuter>
SolverStats dispatch_uniform(ParallelWilsonCloverOp<POuter>& op, SpinorField<POuter>& x,
                             const SpinorField<POuter>& b, const InvertParams& p,
                             CheckpointManager<POuter>* ckpt) {
  const SolverParams sp = solver_params(p);
  if (p.solver == SolverType::CG) return solve_cgnr(op, x, b, sp, ckpt);
  return solve_bicgstab(op, x, b, sp, ckpt);
}

template <typename POuter, typename PSloppy>
SolverStats dispatch_mixed(ParallelWilsonCloverOp<POuter>& op_hi,
                           ParallelWilsonCloverOp<PSloppy>& op_lo, SpinorField<POuter>& x,
                           const SpinorField<POuter>& b, const InvertParams& p,
                           CheckpointManager<POuter>* ckpt) {
  const SolverParams sp = solver_params(p);
  if (p.solver == SolverType::CG)
    throw std::invalid_argument("mixed-precision CG is not provided; use BiCGstab");
  if (p.mixed_strategy == MixedStrategy::DefectCorrection)
    return solve_defect_correction(op_hi, op_lo, x, b, sp);
  SolverStats st = solve_bicgstab_reliable(op_hi, op_lo, x, b, sp, ckpt);
  if (st.escalated && !st.converged && st.iterations < sp.max_iter) {
    // rollback budget exhausted in the sloppy space: finish the solve in
    // full outer precision from the current iterate before giving up
    SolverParams esc = sp;
    esc.max_iter = sp.max_iter - st.iterations;
    st.merge(solve_bicgstab(op_hi, x, b, esc, ckpt));
    st.escalated = true;
  }
  return st;
}

// One rank's half of a coordinated recovery epoch (DESIGN.md §10).  The
// survivor path runs on a RankFailure (a peer went silent under us); the
// dead path on this rank's own RankDeath, standing in for the warm spare
// that takes over the subvolume.  Both charge their local costs, roll the
// iterate back to the last committed checkpoint, and meet at the recovery
// rendezvous, after which every rank's clock sits at the epoch's resume
// time and the transport is clean.  Returns the completed epoch index.
template <typename POuter>
int recover_rank(RankContext& ctx, comm::QmpGrid& grid, CheckpointManager<POuter>& ckpt,
                 SpinorField<POuter>& x, const sim::RankDeath* death) {
  const sim::FaultConfig& fc = ctx.spec().faults;
  auto& counters = ctx.faults().counters();
  auto& tracer = ctx.tracer();

  if (death != nullptr) {
    // this rank died: model the failure detector noticing (heartbeats stop
    // after a crash; a hang must outlive the hang timeout) and the warm
    // spare spinning up in its place
    const double latency =
        death->kind == sim::DeathKind::Hang ? fc.hang_timeout_us : fc.heartbeat_interval_us;
    tracer.span(trace::Cat::Fault, "detect", trace::kTrackHost, ctx.clock().now_us,
                ctx.clock().now_us + latency);
    ctx.clock().advance(latency);
    counters.detection_us += latency;
    const double respawn_begin = ctx.clock().now_us;
    ctx.clock().advance(fc.respawn_us);
    ++counters.respawns;
    tracer.span(trace::Cat::Fault, "respawn", trace::kTrackHost, respawn_begin,
                ctx.clock().now_us);
    // the new incarnation draws its own death schedule, relative to now
    grid.arm_failure_detector();
  } else {
    // survivor: go terminal first so peers blocked on us unblock, then
    // charge the local rollback (discarding the Krylov space built since
    // the last committed checkpoint)
    ctx.enter_recovery();
    ++counters.rank_failures_detected;
    tracer.instant(trace::Cat::Fault, "rank_failure", trace::kTrackHost, ctx.clock().now_us);
    const double rb_begin = ctx.clock().now_us;
    ctx.clock().advance(fc.rollback_us);
    counters.restore_us += fc.rollback_us;
    tracer.span(trace::Cat::Fault, "rollback", trace::kTrackHost, rb_begin, ctx.clock().now_us);
  }

  // roll the iterate back to the last committed checkpoint, or restart from
  // the initial (zero) guess when nothing committed yet
  const double restore_begin = ctx.clock().now_us;
  if (ckpt.restore(x) < 0) x.zero();
  tracer.span(trace::Cat::Fault, "restore", trace::kTrackHost, restore_begin,
              ctx.clock().now_us);

  // coordinated epoch barrier: every rank resumes at the same clock with
  // fresh channels, reduction state, and framing sequence numbers
  const double arrive_us = ctx.clock().now_us;
  const sim::RecoveryEpoch ep = ctx.recovery_rendezvous();
  grid.recovery_sync();
  tracer.span(trace::Cat::Fault, "resume", trace::kTrackHost, arrive_us, ctx.clock().now_us);
  tracer.instant(trace::Cat::Fault, "recovery_reset", trace::kTrackHost, ctx.clock().now_us);
  if (auto* rec = telemetry::current()) rec->recovery(ep.epoch);
  // the epoch index is cluster-global, so every rank takes this branch (or
  // none does) -- a deterministic abort instead of a poison race
  if (ep.epoch > fc.max_failures)
    throw std::runtime_error("rank-failure recovery budget exhausted after " +
                             std::to_string(ep.epoch) + " epochs");
  return ep.epoch;
}

// Drive `solve_fn` (+ `epilogue`: odd-site reconstruction and the closing
// barrier) to completion through rank failures.  Interrupt-style loop: the
// catch blocks only record what happened; the recovery work -- which can
// itself die and re-enter the loop -- runs inside the try.
template <typename POuter, typename SolveFn, typename EpilogueFn>
SolverStats run_with_recovery(RankContext& ctx, comm::QmpGrid& grid,
                              CheckpointManager<POuter>& ckpt, SpinorField<POuter>& x,
                              int& epochs_seen, SolveFn&& solve_fn, EpilogueFn&& epilogue) {
  grid.arm_failure_detector();
  enum class Interrupt { None, PeerFailed, Died };
  Interrupt intr = Interrupt::None;
  sim::RankDeath death{};
  int catches = 0;
  for (;;) {
    try {
      if (intr != Interrupt::None) {
        const int epoch =
            recover_rank(ctx, grid, ckpt, x, intr == Interrupt::Died ? &death : nullptr);
        epochs_seen = std::max(epochs_seen, epoch);
        intr = Interrupt::None;
      }
      SolverStats st = solve_fn(&ckpt);
      epilogue();
      grid.disarm_failure_detector();
      return st;
    } catch (const sim::RankFailure&) {
      intr = Interrupt::PeerFailed;
    } catch (const sim::RankDeath& d) {
      death = d;
      intr = Interrupt::Died;
    }
    // local backstop only; the real (deterministic, cluster-global) budget
    // is the epoch check inside recover_rank
    if (++catches > 4 * (ctx.spec().faults.max_failures + 2))
      throw std::runtime_error("recovery loop made no progress within its failure budget");
  }
}

// per-rank solve at outer precision POuter (and optional sloppy PSloppy)
template <typename POuter, typename PSloppy>
RankOutcome rank_solve(RankContext& ctx, const GridTopology& topo, const Geometry& lg,
                       const HostGaugeField& lu, const HostCloverField& lt,
                       const HostCloverField& ltinv, const HostSpinorField& lb,
                       const InvertParams& p, bool mixed) {
  comm::QmpGrid grid(ctx, topo);
  grid.set_retry_policy(p.retry);
  RankOutcome out;
  const double setup_begin_us = ctx.clock().now_us;

  OperatorParams op_params;
  op_params.mass = p.mass;
  op_params.time_bc = p.time_bc;

  RankFields<POuter> hi(grid, lg, lu, lt, ltinv, p.reconstruct);
  out.gauge_bytes = hi.gauge.device_bytes();
  ParallelWilsonCloverOp<POuter> op_hi(grid, lg, hi.gauge, hi.clover, hi.clover_inv, op_params,
                                       p.overlap);

  const PartitionMask mask = topo.partition_mask();
  SpinorField<POuter> b_e = upload_spinor<POuter>(lb, Parity::Even, mask);
  SpinorField<POuter> b_o = upload_spinor<POuter>(lb, Parity::Odd, mask);
  SpinorField<POuter> bprime = make_vector<POuter>(grid, lg);
  SpinorField<POuter> x_e = make_vector<POuter>(grid, lg);
  SpinorField<POuter> x_o = make_vector<POuter>(grid, lg);
  ctx.device().malloc_bytes(b_e.device_bytes() + b_o.device_bytes());
  charge_solver_vectors<POuter>(grid, lg, 6); // r, r0, p, v, s, t

  op_hi.prepare_source(bprime, b_e, b_o);

  // checkpoint/restart driver state; deaths are armed only once setup is
  // barriered (setup-phase failures are out of scope, DESIGN.md §10)
  CheckpointManager<POuter> ckpt(grid, p.checkpoint_interval);
  auto epilogue = [&] {
    op_hi.reconstruct_odd(x_o, x_e, b_o);
    grid.barrier();
  };

  if (!mixed) {
    grid.barrier();
    out.setup_done_us = ctx.clock().now_us;
    out.stats = run_with_recovery(
        ctx, grid, ckpt, x_e, out.recovery_epochs,
        [&](CheckpointManager<POuter>* c) { return dispatch_uniform(op_hi, x_e, bprime, p, c); },
        epilogue);
    out.effective_flops = op_hi.effective_flops();
  } else {
    using PS = PSloppy;
    RankFields<PS> lo(grid, lg, lu, lt, ltinv, p.reconstruct_sloppy.value_or(p.reconstruct));
    out.gauge_bytes += lo.gauge.device_bytes();
    ParallelWilsonCloverOp<PS> op_lo(grid, lg, lo.gauge, lo.clover, lo.clover_inv, op_params,
                                     p.overlap);
    charge_solver_vectors<PS>(grid, lg, 7); // sloppy r, r0, p, v, s, t, x
    grid.barrier();
    out.setup_done_us = ctx.clock().now_us;
    out.stats = run_with_recovery(
        ctx, grid, ckpt, x_e, out.recovery_epochs,
        [&](CheckpointManager<POuter>* c) {
          return dispatch_mixed(op_hi, op_lo, x_e, bprime, p, c);
        },
        epilogue);
    out.effective_flops = op_hi.effective_flops() + op_lo.effective_flops();
  }

  out.solve_done_us = ctx.clock().now_us;
  out.ckpt_digest = ckpt.committed_digest();
  out.ckpt_log = ckpt.log();
  ctx.tracer().span(trace::Cat::Solver, "setup", trace::kTrackSolver, setup_begin_us,
                    out.setup_done_us);
  ctx.tracer().span(trace::Cat::Solver, "solve", trace::kTrackSolver, out.setup_done_us,
                    out.solve_done_us);

  out.x_local = HostSpinorField(lg);
  download_spinor(x_e, Parity::Even, out.x_local);
  download_spinor(x_o, Parity::Odd, out.x_local);
  out.bytes_peak = ctx.device().bytes_peak();
  return out;
}

void validate(const InvertParams& p) {
  if (p.precision == Precision::Half)
    throw std::invalid_argument("half precision is a sloppy precision, not an outer one");
  if (p.sloppy && bytes_per_real(*p.sloppy) > bytes_per_real(p.precision))
    throw std::invalid_argument("sloppy precision must not exceed the outer precision");
  if (p.reconstruct_sloppy &&
      reals_per_link(*p.reconstruct_sloppy) > reals_per_link(p.reconstruct))
    throw std::invalid_argument(
        "sloppy reconstruct must not store more reals than the outer reconstruct");
}

} // namespace

InvertResult invert_multi_gpu(const sim::ClusterSpec& cluster_spec, const HostGaugeField& gauge,
                              const HostSpinorField& b, HostSpinorField& x,
                              const InvertParams& params) {
  validate(params);
  const Geometry& g = gauge.geom();
  const int n_ranks = cluster_spec.num_ranks();
  const GridTopology topo = resolve_topology(params, n_ranks);
  (void)local_geometry(g, topo); // validate divisibility up front

  // clover term: built once on the global lattice (boundary leaves need
  // cross-rank links, exactly why Chroma hands QUDA a finished clover field)
  HostCloverField t = make_clover_term(gauge, params.csw);
  add_diag(t, 4.0 + params.mass);
  const HostCloverField tinv = invert_clover(t);

  // rotate the source into the internal basis
  HostSpinorField b_nr(g);
  for (std::int64_t i = 0; i < g.volume(); ++i)
    b_nr[i] = rotate_basis(params.interface_basis, GammaBasis::NonRelativistic, b[i]);

  VirtualCluster cluster(cluster_spec);
  std::vector<RankOutcome> outcomes(static_cast<std::size_t>(n_ranks));

  cluster.run([&](RankContext& ctx) {
    const int rank = ctx.rank();
    const Geometry local = local_geometry(g, topo);
    const HostGaugeField lu = slice_gauge(gauge, topo, rank);
    const HostCloverField lt = slice_clover(t, topo, rank);
    const HostCloverField ltinv = slice_clover(tinv, topo, rank);
    const HostSpinorField lb = slice_spinor(b_nr, topo, rank);

    RankOutcome& out = outcomes[static_cast<std::size_t>(rank)];
    const bool mixed = params.sloppy && *params.sloppy != params.precision;

    if (params.precision == Precision::Double) {
      if (!mixed)
        out = rank_solve<PrecDouble, PrecDouble>(ctx, topo, local, lu, lt, ltinv, lb, params,
                                                 false);
      else if (*params.sloppy == Precision::Single)
        out = rank_solve<PrecDouble, PrecSingle>(ctx, topo, local, lu, lt, ltinv, lb, params,
                                                 true);
      else
        out = rank_solve<PrecDouble, PrecHalf>(ctx, topo, local, lu, lt, ltinv, lb, params,
                                               true);
    } else {
      if (!mixed)
        out = rank_solve<PrecSingle, PrecSingle>(ctx, topo, local, lu, lt, ltinv, lb, params,
                                                 false);
      else
        out = rank_solve<PrecSingle, PrecHalf>(ctx, topo, local, lu, lt, ltinv, lb, params,
                                               true);
    }
  });

  // merge and rotate back to the interface basis
  HostSpinorField x_nr(g);
  for (int r = 0; r < n_ranks; ++r)
    merge_spinor(x_nr, outcomes[static_cast<std::size_t>(r)].x_local, topo, r);
  if (x.geom().volume() != g.volume()) x = HostSpinorField(g);
  for (std::int64_t i = 0; i < g.volume(); ++i)
    x[i] = rotate_basis(GammaBasis::NonRelativistic, params.interface_basis, x_nr[i]);

  InvertResult result;
  result.stats = outcomes[0].stats;
  double total_flops = 0;
  for (const auto& o : outcomes) {
    total_flops += o.effective_flops;
    result.device_bytes_peak = std::max(result.device_bytes_peak, o.bytes_peak);
    result.gauge_device_bytes = std::max(result.gauge_device_bytes, o.gauge_bytes);
  }
  result.simulated_time_us = outcomes[0].solve_done_us - outcomes[0].setup_done_us;
  result.effective_gflops =
      result.simulated_time_us > 0 ? total_flops / (result.simulated_time_us * 1e3) : 0.0;

  // fault/recovery report: comm-layer counters summed over ranks, solver
  // recovery from rank 0 (reductions keep every rank's solver in lockstep)
  const sim::FaultCounters& fc = cluster.fault_totals();
  FaultReport& fr = result.faults;
  fr.drops = fc.drops;
  fr.delays = fc.delays;
  fr.corruptions = fc.corruptions;
  fr.device_flips = fc.device_flips;
  fr.stalls = fc.stalls;
  fr.checksum_errors = fc.checksum_errors;
  fr.retries = fc.retries;
  fr.sdc_detected = result.stats.sdc_detected;
  fr.rollbacks = result.stats.rollbacks;
  fr.breakdown_restarts = result.stats.breakdown_restarts;
  fr.escalated = result.stats.escalated;
  fr.recovered = fc.recovered_messages + result.stats.rollbacks;
  fr.recovery_time_us = fc.recovery_us;

  // process-failure recovery: crash/hang injections, detection latency, and
  // the checkpoint/restart work that got the solve to completion anyway
  RecoveryReport& rr = fr.recovery;
  rr.crashes = fc.crashes;
  rr.hangs = fc.hangs;
  rr.respawns = fc.respawns;
  rr.checkpoints = fc.checkpoints_committed;
  rr.restores = fc.restores;
  rr.detection_us = fc.detection_us;
  rr.checkpoint_us = fc.checkpoint_us;
  rr.restore_us = fc.restore_us;
  for (const auto& o : outcomes) {
    rr.failures = std::max(rr.failures, o.recovery_epochs);
    rr.checkpoint_digest ^= o.ckpt_digest;
  }

  // QUDA_SIM_CKPT=<path>: export the per-rank checkpoint event log as JSON
  // lines (one object per write/commit/abort/restore event)
  if (const char* ckpt_env = std::getenv("QUDA_SIM_CKPT"); ckpt_env != nullptr && *ckpt_env) {
    const std::string path = trace::unique_trace_path(ckpt_env);
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      // one provenance line first, so differential tools can strip it by filter
      std::fprintf(f, "{\"provenance\":%s}\n", core::provenance_json(cluster_spec).c_str());
      for (int r = 0; r < n_ranks; ++r)
        for (const CheckpointEvent& e : outcomes[static_cast<std::size_t>(r)].ckpt_log)
          std::fprintf(f,
                       "{\"rank\":%d,\"action\":\"%s\",\"iteration\":%d,\"time_us\":%.3f,"
                       "\"digest\":\"%016llx\",\"bytes\":%lld}\n",
                       r, e.action, e.iteration, e.time_us,
                       static_cast<unsigned long long>(e.digest),
                       static_cast<long long>(e.bytes));
      std::fclose(f);
    }
  }

  result.traced = cluster.trace().enabled;
  if (result.traced) {
    result.trace_metrics = trace::compute_metrics(cluster.trace());
    result.critpath = trace::analyze_solve(
        cluster.trace(), trace::ModelConfig{cluster_spec.device.dual_copy_engine});
  }
  result.telemetry = cluster.telemetry();
  return result;
}

InvertResult invert(const HostGaugeField& gauge, const HostSpinorField& b, HostSpinorField& x,
                    const InvertParams& params) {
  return invert_multi_gpu(sim::ClusterSpec::jlab_9g(1), gauge, b, x, params);
}

void apply_matrix_multi_gpu(const sim::ClusterSpec& cluster_spec, const HostGaugeField& gauge,
                            const HostSpinorField& in, HostSpinorField& out,
                            const InvertParams& params) {
  validate(params);
  const Geometry& g = gauge.geom();
  const int n_ranks = cluster_spec.num_ranks();
  const GridTopology topo = resolve_topology(params, n_ranks);

  HostCloverField t = make_clover_term(gauge, params.csw);
  add_diag(t, 4.0 + params.mass);
  const HostCloverField tinv = invert_clover(t);

  HostSpinorField in_nr(g);
  for (std::int64_t i = 0; i < g.volume(); ++i)
    in_nr[i] = rotate_basis(params.interface_basis, GammaBasis::NonRelativistic, in[i]);

  VirtualCluster cluster(cluster_spec);
  std::vector<HostSpinorField> outs(static_cast<std::size_t>(n_ranks));

  cluster.run([&](RankContext& ctx) {
    comm::QmpGrid grid(ctx, topo);
    grid.set_retry_policy(params.retry);
    const int rank = ctx.rank();
    const Geometry local = local_geometry(g, topo);
    const HostGaugeField lu = slice_gauge(gauge, topo, rank);
    const HostCloverField lt = slice_clover(t, topo, rank);
    const HostCloverField ltinv = slice_clover(tinv, topo, rank);
    const HostSpinorField lin = slice_spinor(in_nr, topo, rank);

    OperatorParams op_params;
    op_params.mass = params.mass;
    op_params.time_bc = params.time_bc;

    RankFields<PrecDouble> fields(grid, local, lu, lt, ltinv, params.reconstruct);
    parallel::ParallelWilsonCloverOp<PrecDouble> op(grid, local, fields.gauge, fields.clover,
                                                    fields.clover_inv, op_params, params.overlap);

    const PartitionMask mask = topo.partition_mask();
    SpinorFieldD in_e = upload_spinor<PrecDouble>(lin, Parity::Even, mask);
    SpinorFieldD in_o = upload_spinor<PrecDouble>(lin, Parity::Odd, mask);
    SpinorFieldD out_e(local, mask), out_o(local, mask);
    op.apply_full(out_e, out_o, in_e, in_o);

    HostSpinorField lout(local);
    download_spinor(out_e, Parity::Even, lout);
    download_spinor(out_o, Parity::Odd, lout);
    outs[static_cast<std::size_t>(rank)] = lout;
  });

  HostSpinorField out_nr(g);
  for (int r = 0; r < n_ranks; ++r)
    merge_spinor(out_nr, outs[static_cast<std::size_t>(r)], topo, r);
  if (out.geom().volume() != g.volume()) out = HostSpinorField(g);
  for (std::int64_t i = 0; i < g.volume(); ++i)
    out[i] = rotate_basis(GammaBasis::NonRelativistic, params.interface_basis, out_nr[i]);
}

} // namespace quda
