#pragma once
// The single allowlisted wall-clock shim.
//
// The determinism contract (DESIGN.md, exec/host_engine.h) forbids reading
// real time anywhere simulated time is computed: one stray steady_clock
// read in a timing path silently breaks bit-identical makespans.  Rule
// sim-nondeterminism in tools/static_check.py therefore bans every clock /
// entropy source across src/, bench/, and tests/ -- except inside this
// file, which is the one allowlisted call site.
//
// Two legitimate wall-clock consumers exist, and both route through here:
//  * the DES deadlock watchdog (RankContext::wait's wall_timeout_ms), via
//    now_for_watchdog() -- injectable so tests can fake an expired
//    deadline without sleeping;
//  * wall-time measurement in the benches (bench_util.h WallTimer), via
//    wall_now() -- measurement only, never fed back into simulated time.

#include <atomic>
#include <chrono>

namespace quda::core {

using WallClock = std::chrono::steady_clock;
using WallClockFn = WallClock::time_point (*)();

namespace detail {
// injected override for the watchdog clock (tests only); namespace-scope
// so no mutable function-local static is needed
inline std::atomic<WallClockFn> g_watchdog_clock{nullptr};
} // namespace detail

// monotonic wall-clock read for measurement (benches, tooling)
inline WallClock::time_point wall_now() { return WallClock::now(); }

// Wall-clock read backing the DES deadlock watchdog.  Defaults to the real
// monotonic clock; tests inject a fake via set_watchdog_clock_for_testing
// to exercise timeout paths deterministically and without sleeping.
inline WallClock::time_point now_for_watchdog() {
  const WallClockFn fn = detail::g_watchdog_clock.load(std::memory_order_relaxed);
  return fn != nullptr ? fn() : wall_now();
}

// install a fake watchdog clock (nullptr restores the real one); returns
// the previously installed function so tests can nest/restore
inline WallClockFn set_watchdog_clock_for_testing(WallClockFn fn) {
  return detail::g_watchdog_clock.exchange(fn);
}

} // namespace quda::core
