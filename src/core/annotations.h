#pragma once
// Clang thread-safety annotation macros for the simulator's concurrency
// layer (host_engine's pool, the VirtualCluster transport, trace sinks).
//
// Two enforcement paths share these markers:
//  * Under clang with -DQUDA_SIM_ANALYZE=1 (the QUDA_SIM_ANALYZE=ON CMake
//    option) they expand to the clang thread-safety attributes, and the
//    build runs with -Wthread-safety -Werror=thread-safety, so an access
//    to a QUDA_GUARDED_BY field outside its mutex is a compile error.
//  * On every compiler (the container ships gcc only) tools/static_check.py
//    cross-checks the annotations *structurally*: every mutex member must
//    be referenced by at least one QUDA_GUARDED_BY / QUDA_REQUIRES /
//    QUDA_ACQUIRE / QUDA_RELEASE / QUDA_EXCLUDES, every condition-variable
//    member must carry QUDA_CV_WAITS_WITH naming its pairing mutex, and
//    every annotation argument must resolve to a declared mutex
//    (rule sim-mutex-coverage).
//
// The annotated primitives themselves (core::Mutex, core::MutexLock,
// core::CondVar) live in core/sync.h: clang's analysis only tracks lock
// acquisition through attribute-annotated types, and libstdc++'s std::mutex
// / std::lock_guard carry no attributes.

#if defined(QUDA_SIM_ANALYZE) && defined(__clang__)
#define QUDA_TSA(x) __attribute__((x))
#else
#define QUDA_TSA(x) // expands to nothing: gcc and un-analyzed clang builds
#endif

// a type that is a lockable capability (core::Mutex)
#define QUDA_CAPABILITY(name) QUDA_TSA(capability(name))
// an RAII type whose constructor acquires and destructor releases
#define QUDA_SCOPED_CAPABILITY QUDA_TSA(scoped_lockable)

// data members: which mutex protects them
#define QUDA_GUARDED_BY(x) QUDA_TSA(guarded_by(x))
#define QUDA_PT_GUARDED_BY(x) QUDA_TSA(pt_guarded_by(x))

// functions: locks they need, take, drop, or must not hold
#define QUDA_REQUIRES(...) QUDA_TSA(requires_capability(__VA_ARGS__))
#define QUDA_ACQUIRE(...) QUDA_TSA(acquire_capability(__VA_ARGS__))
#define QUDA_RELEASE(...) QUDA_TSA(release_capability(__VA_ARGS__))
#define QUDA_TRY_ACQUIRE(...) QUDA_TSA(try_acquire_capability(__VA_ARGS__))
#define QUDA_EXCLUDES(...) QUDA_TSA(locks_excluded(__VA_ARGS__))
#define QUDA_RETURN_CAPABILITY(x) QUDA_TSA(lock_returned(x))

// escape hatch for code the analysis cannot model (use sparingly, comment why)
#define QUDA_NO_THREAD_SAFETY_ANALYSIS QUDA_TSA(no_thread_safety_analysis)

// Structural marker only (expands to nothing on every compiler): declares
// which mutex a condition-variable member waits with.  A CV is not
// "guarded" in the data-race sense -- notify is legal without the lock --
// but every CV has exactly one pairing mutex, and static_check.py's
// sim-mutex-coverage rule requires the pairing to be written down.
#define QUDA_CV_WAITS_WITH(x)
