#pragma once
// Annotated concurrency primitives: thin wrappers over std::mutex and
// std::condition_variable_any that carry the clang thread-safety
// attributes from core/annotations.h.  Under gcc (or clang without
// QUDA_SIM_ANALYZE) the attributes vanish and these compile down to the
// plain standard-library primitives; under clang with QUDA_SIM_ANALYZE=ON
// every access to a QUDA_GUARDED_BY member is checked at compile time.
//
// Why wrappers instead of annotating std::mutex members directly: clang's
// analysis only tracks acquisition through attribute-annotated types, and
// libstdc++ ships std::mutex / std::lock_guard without attributes -- a
// GUARDED_BY(std_mutex_member) would either be ignored or flag every
// correctly-locked access.  The wrapper set is the minimal surface the
// simulator needs: Mutex, a scoped MutexLock that supports the early
// unlock() the DES error paths use, and a CondVar that waits through the
// annotated guard (condition_variable_any accepts any BasicLockable, which
// MutexLock satisfies).

#include "core/annotations.h"

#include <chrono>
#include <condition_variable>
#include <mutex>

namespace quda::core {

class QUDA_CAPABILITY("mutex") Mutex {
public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() QUDA_ACQUIRE() { m_.lock(); }
  void unlock() QUDA_RELEASE() { m_.unlock(); }
  bool try_lock() QUDA_TRY_ACQUIRE(true) { return m_.try_lock(); }

private:
  std::mutex m_;
};

// RAII guard over Mutex.  Also satisfies BasicLockable (lock/unlock) so
// CondVar can release and reacquire it around a wait, and supports the
// explicit early unlock() that RankContext::wait uses before raising a
// CommTimeout (the destructor then skips the release).
class QUDA_SCOPED_CAPABILITY MutexLock {
public:
  explicit MutexLock(Mutex& m) QUDA_ACQUIRE(m) : mu_(m), owns_(true) { mu_.lock(); }
  ~MutexLock() QUDA_RELEASE() {
    if (owns_) mu_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void lock() QUDA_ACQUIRE() {
    mu_.lock();
    owns_ = true;
  }
  void unlock() QUDA_RELEASE() {
    mu_.unlock();
    owns_ = false;
  }

private:
  Mutex& mu_;
  bool owns_;
};

// Condition variable paired with a Mutex.  Declare members with
// QUDA_CV_WAITS_WITH(<mutex>) so the pairing is recorded for the
// structural check; waits go through the annotated MutexLock, which the
// underlying condition_variable_any unlocks/relocks internally (net-zero
// for the static analysis, exactly like std::condition_variable).
class CondVar {
public:
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  void wait(MutexLock& lock) { cv_.wait(lock); }

  template <typename Pred> void wait(MutexLock& lock, Pred pred) {
    cv_.wait(lock, pred);
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(MutexLock& lock,
                            const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock, deadline);
  }

private:
  std::condition_variable_any cv_;
};

} // namespace quda::core
