#pragma once
// The public interface of the library, mirroring the shape of QUDA's C API
// (loadGaugeQuda / loadCloverQuda / invertQuda) in idiomatic C++.
//
// An application hands over host-side fields in its own gamma basis
// (Chroma/QDP++ use DeGrand-Rossi) together with an InvertParams describing
// the discretization, precisions, solver, and communication policy; the
// library reorders fields into the device layout, splits them over the
// simulated GPU cluster's ranks, runs the (possibly mixed-precision) Krylov
// solver with halo exchange, and returns the solution plus solver and
// performance statistics.
//
// The single-GPU path is simply a 1-rank cluster.

#include "dirac/wilson_ref.h"
#include "lattice/gauge_field.h"
#include "lattice/host_field.h"
#include "lattice/precision.h"
#include "parallel/policy.h"
#include "sim/cluster_spec.h"
#include "solvers/solver.h"
#include "trace/attribution.h"
#include "trace/metrics.h"
#include "trace/telemetry.h"

#include <optional>

namespace quda {

enum class SolverType {
  BiCGstab, // the production solver of the paper
  CG,       // conjugate gradients on the normal equations (CGNR)
};

enum class MixedStrategy {
  ReliableUpdates,  // QUDA's scheme: one Krylov space, high-precision corrections
  DefectCorrection, // restart-based baseline
};

struct InvertParams {
  // physics / discretization
  double mass = 0.0;
  double csw = 0.0; // 0 = plain Wilson; nonzero = Wilson-clover
  TimeBoundary time_bc = TimeBoundary::Antiperiodic;
  GammaBasis interface_basis = GammaBasis::DeGrandRossi;

  // precisions: solver runs at `precision`; setting a lower `sloppy`
  // selects the mixed-precision reliable-update solver
  Precision precision = Precision::Single;
  std::optional<Precision> sloppy{};
  MixedStrategy mixed_strategy = MixedStrategy::ReliableUpdates;

  // solver controls (Section VII-A's tol / delta)
  SolverType solver = SolverType::BiCGstab;
  double tol = 1e-7; // relative; note the outer precision's floor (~1e-7 in single)
  double delta = 1e-1;
  int max_iter = 5000;
  bool verbose = false;

  // multi-GPU controls
  CommPolicy overlap = CommPolicy::Overlap;
  // gauge link storage per solver level: `reconstruct` for the outer fields,
  // `reconstruct_sloppy` for the sloppy/inner fields of a mixed solve
  // (default = same as outer).  The sloppy level may compress harder than
  // the outer one (e.g. Twelve outer / Eight sloppy) but never store more
  // reals -- mirroring the precision rule.
  Reconstruct reconstruct = Reconstruct::Twelve;
  std::optional<Reconstruct> reconstruct_sloppy{};
  // rank grid over (x, y, z, t).  All ones = the paper's 1-D slicing of the
  // time dimension sized to the cluster; anything else selects the
  // multi-dimensional decomposition (the paper's future work) and must
  // multiply to the cluster's rank count.
  std::array<int, 4> grid{1, 1, 1, 1};

  // fault tolerance: message framing/retry policy of the comm layer, and
  // the solver's SDC rollback policy (sdc_threshold 0 = detection off).
  // Faults themselves are injected via ClusterSpec::faults.
  sim::RetryPolicy retry{};
  double sdc_threshold = 0;
  int max_rollbacks = 10;
  int max_breakdown_restarts = 3;
  // coordinated checkpoint/restart: take a two-phase checkpoint of the
  // solver iterate every N checkpointable boundaries (accepted reliable
  // updates in the mixed solver, every 10th iteration in uniform solvers);
  // 0 disables checkpointing (a rank failure then restarts the solve from
  // the initial guess)
  int checkpoint_interval = 0;
};

// process-failure recovery outcome of one solve (DESIGN.md §10)
struct RecoveryReport {
  int failures = 0;        // completed recovery epochs
  long crashes = 0;        // rank-crash injections that fired
  long hangs = 0;          // rank-hang injections that fired
  long respawns = 0;       // warm-spare respawns
  long checkpoints = 0;    // two-phase commits (summed over ranks)
  long restores = 0;       // checkpoint restores (summed over ranks)
  double detection_us = 0; // sim time between deaths and cluster detection
  double checkpoint_us = 0;   // sim time charged to checkpoint writes/commits
  double restore_us = 0;      // sim time charged to rollback + restore
  // XOR of the per-rank last-committed checkpoint digests (order-free, so
  // deterministic without extra communication); 0 when nothing committed
  std::uint64_t checkpoint_digest = 0;

  bool clean() const { return crashes == 0 && hangs == 0; }
};

// fault/recovery outcome of one solve: what was injected, what the
// detection layers caught, and what the recovery machinery did about it
struct FaultReport {
  // injected (summed over ranks)
  long drops = 0;
  long delays = 0;
  long corruptions = 0;
  long device_flips = 0;
  long stalls = 0;
  // detected
  long checksum_errors = 0; // corrupt frames caught by receivers
  int sdc_detected = 0;     // corrupted iterates caught at reliable updates
  // recovered
  long retries = 0;            // resend attempts by the reliable senders
  long recovered = 0;          // redelivered messages + completed rollbacks
  int rollbacks = 0;           // solver rollbacks to a reliable iterate
  int breakdown_restarts = 0;  // Krylov restarts after scalar breakdown
  bool escalated = false;      // solve finished in full outer precision
  double recovery_time_us = 0; // sim time spent on timeouts, backoff, stalls
  // process-level failures and checkpoint/restart recovery
  RecoveryReport recovery{};

  bool clean() const {
    return drops == 0 && delays == 0 && corruptions == 0 && device_flips == 0 && stalls == 0 &&
           recovery.clean();
  }
};

struct InvertResult {
  SolverStats stats;
  double simulated_time_us = 0;    // cluster makespan of the solve
  double effective_gflops = 0;     // aggregate sustained effective Gflops
  std::int64_t device_bytes_peak = 0; // max device memory used by any rank
  // per-rank gauge storage actually allocated (outer + sloppy fields at
  // their respective Reconstruct) -- the footprint the recon knobs shrink
  std::int64_t gauge_device_bytes = 0;
  FaultReport faults;              // fault injection / recovery accounting
  bool traced = false;             // tracing was on; `trace_metrics` is meaningful
  trace::Metrics trace_metrics{};  // aggregated trace metrics of the solve
  trace::CritSummary critpath{};   // critical-path attribution of the full run
  telemetry::TelemetryReport telemetry{}; // flight recorder (QUDA_SIM_TELEMETRY)
};

// Solve M x = b on `ranks` simulated GPUs (time-direction decomposition).
// `gauge` and `b` are full-lattice host fields in `params.interface_basis`;
// `x` receives the solution in the same basis.  The global T must divide
// evenly into even local slabs.
InvertResult invert_multi_gpu(const sim::ClusterSpec& cluster_spec, const HostGaugeField& gauge,
                              const HostSpinorField& b, HostSpinorField& x,
                              const InvertParams& params);

// single-GPU convenience overload
InvertResult invert(const HostGaugeField& gauge, const HostSpinorField& b, HostSpinorField& x,
                    const InvertParams& params);

// Apply the full Wilson-clover matrix M on `ranks` GPUs (an `MatQuda`-style
// entry point, useful for residual checks and as a cheap API smoke test).
void apply_matrix_multi_gpu(const sim::ClusterSpec& cluster_spec, const HostGaugeField& gauge,
                            const HostSpinorField& in, HostSpinorField& out,
                            const InvertParams& params);

} // namespace quda
