#pragma once
// Common provenance stamp for every export the simulator writes: the trace
// JSON (QUDA_SIM_TRACE), the checkpoint event log (QUDA_SIM_CKPT), the
// telemetry JSONL (QUDA_SIM_TELEMETRY), and every BENCH_<name>.json.
//
// The stamp records what produced the file -- git describe, build type,
// the resolved rank scheduler, the host thread budget, and a cluster-spec
// summary -- as one JSON object, emitted on exactly one line of each
// export so differential tests (which compare exports bitwise across
// schedulers and thread budgets) can strip it with a line filter.
//
// QUDA_SIM_GIT_DESCRIBE / QUDA_SIM_BUILD_TYPE are baked in at configure
// time by the top-level CMakeLists; the fallbacks keep ad-hoc compiles
// working.

#include "exec/host_engine.h"
#include "sim/cluster_spec.h"
#include "sim/scheduler.h"

#include <string>

#ifndef QUDA_SIM_GIT_DESCRIBE
#define QUDA_SIM_GIT_DESCRIBE "unknown"
#endif
#ifndef QUDA_SIM_BUILD_TYPE
#define QUDA_SIM_BUILD_TYPE "unknown"
#endif

namespace quda::core {

inline const char* git_describe() { return QUDA_SIM_GIT_DESCRIBE; }
inline const char* build_type() {
  return QUDA_SIM_BUILD_TYPE[0] != '\0' ? QUDA_SIM_BUILD_TYPE : "default";
}

// one-line JSON summary of the cluster an export came from
inline std::string cluster_summary_json(const sim::ClusterSpec& spec) {
  return "{\"ranks\": " + std::to_string(spec.num_ranks()) +
         ", \"nodes\": " + std::to_string(spec.num_nodes()) +
         ", \"gpus_per_node\": " + std::to_string(spec.gpus_per_node) +
         ", \"nodes_per_switch\": " + std::to_string(spec.interconnect.nodes_per_switch) + "}";
}

// The provenance object itself.  scheduler should be the *resolved* name
// ("threads" | "seq"); cluster_summary is cluster_summary_json(spec), or
// empty when no single cluster describes the export (bench suites).
inline std::string provenance_json(const std::string& scheduler,
                                   const std::string& cluster_summary = "") {
  std::string out = "{\"git\": \"";
  out += git_describe();
  out += "\", \"build\": \"";
  out += build_type();
  out += "\", \"scheduler\": \"";
  out += scheduler;
  out += "\", \"threads\": ";
  out += std::to_string(exec::thread_budget());
  if (!cluster_summary.empty()) {
    out += ", \"cluster\": ";
    out += cluster_summary;
  }
  out += "}";
  return out;
}

// provenance for a run under `spec` (resolves the scheduler the run used)
inline std::string provenance_json(const sim::ClusterSpec& spec) {
  return provenance_json(sim::scheduler_name(sim::resolve_scheduler(spec.scheduler)),
                         cluster_summary_json(spec));
}

} // namespace quda::core
