#pragma once
// Analytic kernel cost formulas and calibration constants.
//
// The anchor numbers come from the paper (Section V-A): applying the fused
// Wilson-clover matrix costs 3696 flops per lattice site against 2976 bytes
// of memory traffic in single precision, with 2-row gauge compression.  All
// performance is quoted in "effective Gflops" using the standard operation
// count (reconstruction flops are *not* counted), exactly as in Section
// VII-A.
//
// Per-precision efficiency factors express how close each kernel family
// runs to the device's peak bandwidth; they are the model's calibration
// knobs (documented in EXPERIMENTS.md) and were chosen so the simulated
// GTX 285 lands in the regime the paper reports (roughly 95-105 effective
// Gflops per GPU for the single-precision solver, ~150 for mixed
// single-half, ~25-30 for double).

#include "gpusim/kernel_model.h"
#include "lattice/gauge_field.h"
#include "lattice/geometry.h"
#include "lattice/precision.h"
#include "sim/cluster_spec.h"

#include <cmath>
#include <cstdint>

namespace quda::perf {

// paper constants for one application of the even-odd Wilson-clover matrix,
// per (single-parity) site
inline constexpr double kMatrixFlopsPerSite = 3696.0;
inline constexpr double kMatrixBytesPerSiteSingle = 2976.0;

// link loads per matrix application per (single-parity) site: the two fused
// dslash kernels each stream 8 links (4 directions x forward/backward)
inline constexpr double kLinkLoadsPerSite = 16.0;

// the 2976-byte anchor assumes 2-row (12-real) gauge compression
inline constexpr int kAnchorGaugeReals = 12;

inline double matrix_bytes_per_site(Precision p) {
  switch (p) {
    case Precision::Double: return 2.0 * kMatrixBytesPerSiteSingle;
    case Precision::Single: return kMatrixBytesPerSiteSingle;
    case Precision::Half:
      // 16-bit payload plus the float normalization arrays (9 spinor norms
      // and 1 clover norm per site)
      return 0.5 * kMatrixBytesPerSiteSingle + 10.0 * 4.0;
  }
  return 0;
}

// gauge-only slice of the matrix traffic: 16 link loads per site at the
// field's stored width -- the quantity link reconstruction shrinks
inline double gauge_bytes_per_site(Precision p, Reconstruct r) {
  return kLinkLoadsPerSite * reals_per_link(r) * static_cast<double>(bytes_per_real(p));
}

// recon-aware matrix traffic: shift the anchored total by the difference
// between the stored link width and the anchor's 12 reals, so Twelve
// reproduces matrix_bytes_per_site(p) exactly and Eight/Eighteen move the
// modeled bandwidth (and with it effective Gflops) the way the papers show
inline double matrix_bytes_per_site(Precision p, Reconstruct r) {
  return matrix_bytes_per_site(p) +
         kLinkLoadsPerSite * (reals_per_link(r) - kAnchorGaugeReals) *
             static_cast<double>(bytes_per_real(p));
}

// dslash-kernel fraction of peak bandwidth (gather-heavy access pattern);
// double runs far from peak on GT200-era hardware (no texture doubles)
inline double dslash_efficiency(Precision p) {
  switch (p) {
    case Precision::Double: return 0.27;
    case Precision::Single: return 0.58;
    case Precision::Half: return 0.40; // the half kernel is gather/ALU-limited, not pure streaming
  }
  return 0;
}

// streaming (BLAS1) kernels run much closer to peak
inline constexpr double kBlasEfficiency = 0.85;

// The even-odd matrix application is realized as two fused dslash+clover
// kernels (one per parity sweep), so each kernel gets half the per-site
// totals over `sites` output sites.
inline gpusim::KernelCost dslash_kernel_cost(Precision p, std::int64_t sites,
                                             std::int64_t stride_bytes = 0) {
  gpusim::KernelCost c;
  c.flops = 0.5 * kMatrixFlopsPerSite * static_cast<double>(sites);
  c.bytes = 0.5 * matrix_bytes_per_site(p) * static_cast<double>(sites);
  c.efficiency = dslash_efficiency(p);
  c.stride_bytes = stride_bytes;
  c.name = "dslash";
  return c;
}

// recon-aware variant (Twelve reproduces the two-argument cost bit-for-bit)
inline gpusim::KernelCost dslash_kernel_cost(Precision p, std::int64_t sites, Reconstruct r,
                                             std::int64_t stride_bytes = 0) {
  gpusim::KernelCost c = dslash_kernel_cost(p, sites, stride_bytes);
  c.bytes = 0.5 * matrix_bytes_per_site(p, r) * static_cast<double>(sites);
  return c;
}

// a fused BLAS kernel reading `reads` and writing `writes` spinor vectors
inline gpusim::KernelCost blas_kernel_cost(Precision p, std::int64_t sites, int reads,
                                           int writes) {
  gpusim::KernelCost c;
  const double reals = 24.0 * static_cast<double>(sites);
  c.bytes = static_cast<double>(reads + writes) * reals *
            static_cast<double>(bytes_per_real(p));
  if (p == Precision::Half) c.bytes += static_cast<double>(reads + writes) *
                                       static_cast<double>(sites) * 4.0; // norms
  c.flops = 2.0 * static_cast<double>(reads) * reals; // ~1 mul + 1 add per real read
  c.efficiency = kBlasEfficiency;
  c.name = "blas";
  return c;
}

// --- face traffic -------------------------------------------------------------

// bytes of one projected spinor face (12 reals per face site, plus one
// float norm per site in half precision) -- what crosses PCI-E and the wire
inline std::int64_t face_bytes(Precision p, std::int64_t face_sites) {
  std::int64_t b = face_sites * 12 * bytes_per_real(p);
  if (p == Precision::Half) b += face_sites * 4;
  return b;
}

// the no-overlap implementation moves each face with one cudaMemcpy per
// field block (Section VI-D1): 24/Nvec blocks, plus one for the norms
inline int face_copy_blocks(Precision p) {
  switch (p) {
    case Precision::Double: return 24 / PrecDouble::nvec;      // 12
    case Precision::Single: return 24 / PrecSingle::nvec;      // 6
    case Precision::Half: return 24 / PrecHalf::nvec + 1;      // 6 + norm copy
  }
  return 1;
}

// received faces go up in a single copy (plus norms in half)
inline int ghost_upload_copies(Precision p) { return p == Precision::Half ? 2 : 1; }

// --- modeled wire costs (hierarchical interconnect aware) ---------------------

// Wire time of one point-to-point message under the spec's interconnect:
// same-node shm, one-hop IB, or the cross-switch fat-tree path with its
// deterministic oversubscription charge.  Flat specs (the default) reduce
// to NetworkModel::transfer_time_us bit-for-bit.
inline double comm_path_us(const sim::ClusterSpec& spec, int src, int dst,
                           std::int64_t bytes) {
  return spec.path_time_us(src, dst, bytes);
}

// Per-step cost of the modeled recursive-doubling allreduce: every step is
// one small-message IB exchange plus the host-side MPI call overhead.
inline double allreduce_step_us(const sim::ClusterSpec& spec) {
  return spec.net.ib_latency_us + spec.net.mpi_overhead_us;
}

// Total modeled latency of an n-rank allreduce after the last arrival:
// ceil(log2 n) recursive-doubling steps, plus -- on hierarchical clusters --
// one up-and-down traversal of the switch tree (the steps that cross leaf
// switches pay the extra hops).  Flat clusters reproduce the historical
// steps * step cost bit-for-bit.
inline double allreduce_tree_cost_us(const sim::ClusterSpec& spec) {
  const int n = spec.num_ranks();
  int steps = 0;
  while ((1 << steps) < n) ++steps;
  double cost = static_cast<double>(steps) * allreduce_step_us(spec);
  const int num_switches = spec.num_switches();
  if (num_switches > 1) {
    int switch_steps = 0;
    while ((1 << switch_steps) < num_switches) ++switch_steps;
    cost += static_cast<double>(switch_steps) * 2.0 * spec.interconnect.switch_hop_us;
  }
  return cost;
}

// effective flop count for reporting, per matrix application (Section
// VII-A's metric)
inline double effective_matrix_flops(std::int64_t sites) {
  return kMatrixFlopsPerSite * static_cast<double>(sites);
}

// effective flops of a fused BLAS kernel (counted like axpy-class ops)
inline double effective_blas_flops(std::int64_t sites, int reads) {
  return 2.0 * 24.0 * static_cast<double>(reads) * static_cast<double>(sites);
}

} // namespace quda::perf
