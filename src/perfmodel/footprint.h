#pragma once
// Device memory footprint of a solver configuration -- the model behind the
// paper's observation that the mixed-precision solver on the 32^3 x 256
// lattice needs at least 8 GPUs while uniform single precision fits on 4
// (Section VII-C), and that double precision does not fit the 32^4-per-GPU
// weak-scaling local volume (Section VII-B).
//
// Conventions (matching QUDA of that era):
//  * single and half precision gauge fields use 2-row (12-real) compression;
//    double precision stores full 18-real links;
//  * the clover term is stored on the even parity and its inverse on the
//    odd parity (what the Schur solve needs), 72 reals each;
//  * BiCGstab keeps 8 outer-precision vectors (b', x, r, r0, p, v, s, t);
//    a mixed solver adds 7 sloppy-precision vectors (r, r0, p, v, s, t, x);
//  * half-precision fields carry float norm arrays.

#include "lattice/gauge_field.h"
#include "lattice/geometry.h"
#include "lattice/precision.h"

#include <cstdint>
#include <optional>

namespace quda::perf {

struct SolverFootprint {
  std::int64_t gauge_bytes = 0;
  std::int64_t clover_bytes = 0;
  std::int64_t spinor_bytes = 0;
  std::int64_t total() const { return gauge_bytes + clover_bytes + spinor_bytes; }
};

// era-default storage convention when no explicit Reconstruct is given
inline std::int64_t gauge_reals_per_link(Precision p) {
  return p == Precision::Double ? 18 : 12;
}

// actual stored width of a field with a known Reconstruct; the nullopt
// passthrough keeps the legacy per-precision convention for callers that
// predate the knob
inline std::int64_t gauge_reals_per_link(Precision p, std::optional<Reconstruct> r) {
  return r ? reals_per_link(*r) : gauge_reals_per_link(p);
}

inline std::int64_t spinor_vector_bytes(Precision p, std::int64_t half_volume,
                                        std::int64_t face_sites) {
  std::int64_t b = half_volume * 24 * bytes_per_real(p);
  b += 2 * face_sites * 12 * bytes_per_real(p); // ghost end zone
  if (p == Precision::Half) b += (half_volume + 2 * face_sites) * 4;
  return b;
}

inline std::int64_t gauge_field_bytes(Precision p, const LatticeDims& local,
                                      std::optional<Reconstruct> recon = std::nullopt) {
  const std::int64_t v = local.volume();
  const std::int64_t pad = local.spatial_volume(); // one face of padding per parity pair
  return (v + pad) * 4 * gauge_reals_per_link(p, recon) * bytes_per_real(p);
}

inline std::int64_t clover_field_bytes(Precision p, const LatticeDims& local) {
  // T on even + T^{-1} on odd = one full volume of 72-real blocks
  std::int64_t b = local.volume() * 72 * bytes_per_real(p) / 2 * 2;
  if (p == Precision::Half) b += local.volume() * 4;
  return b;
}

// footprint of a BiCGstab solve at `outer` precision with an optional
// different sloppy precision (mixed mode stores both copies of the gauge
// and clover fields -- the memory price of mixed precision the paper calls
// out in Section VII-C).  Gauge bytes honor the per-level Reconstruct when
// given; without one the legacy per-precision convention applies.
inline SolverFootprint solver_footprint(const LatticeDims& local, Precision outer,
                                        std::optional<Precision> sloppy = std::nullopt,
                                        std::optional<Reconstruct> recon = std::nullopt,
                                        std::optional<Reconstruct> recon_sloppy = std::nullopt) {
  SolverFootprint f;
  const std::int64_t vh = local.volume() / 2;
  const std::int64_t fs = local.spatial_volume() / 2;

  f.gauge_bytes = gauge_field_bytes(outer, local, recon);
  f.clover_bytes = clover_field_bytes(outer, local);
  f.spinor_bytes = 8 * spinor_vector_bytes(outer, vh, fs);

  if (sloppy && *sloppy != outer) {
    f.gauge_bytes += gauge_field_bytes(*sloppy, local, recon_sloppy ? recon_sloppy : recon);
    f.clover_bytes += clover_field_bytes(*sloppy, local);
    f.spinor_bytes += 7 * spinor_vector_bytes(*sloppy, vh, fs);
  }
  return f;
}

} // namespace quda::perf
