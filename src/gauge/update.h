#pragma once
// Quenched gauge-field generation: the first phase of the LQCD workflow the
// paper's introduction describes (gauge configurations are produced by a
// long-chain Monte Carlo, then analyzed by the solver).  The paper lists
// gauge generation on GPU clusters as future work; this module provides the
// algorithms -- Wilson plaquette action with Cabibbo-Marinari /
// Kennedy-Pendleton heatbath, micro-canonical overrelaxation, and a
// Metropolis sampler kept as an independent cross-check of the heatbath's
// stationary distribution.
//
// Conventions: S[U] = beta * sum_{x, mu<nu} (1 - Re tr P_{mu,nu}(x) / 3),
// so the local weight for a link is exp( (beta/3) Re tr(U_mu(x) K^dag) )
// with K the sum of the six staples.

#include "lattice/host_field.h"

#include <cstdint>
#include <random>

namespace quda::gauge {

// sum of the six staples K such that the local action depends on the link
// through Re tr( U_mu(x) K^dag )
SU3<double> staple_sum(const HostGaugeField& u, const Coords& x, int mu);

// one full-lattice Cabibbo-Marinari heatbath sweep (three SU(2) subgroups
// per link, Kennedy-Pendleton sampling); returns the acceptance fraction of
// the KP rejection step (diagnostic)
double heatbath_sweep(HostGaugeField& u, double beta, std::mt19937_64& rng);

// one micro-canonical overrelaxation sweep (action preserving; decorrelates)
void overrelax_sweep(HostGaugeField& u, std::mt19937_64& rng);

// one Metropolis sweep with `hits` proposals per link of size `step`;
// returns the acceptance fraction.  Kept as the independent correctness
// oracle for the heatbath.
double metropolis_sweep(HostGaugeField& u, double beta, double step, int hits,
                        std::mt19937_64& rng);

// the update combination production codes use: n_or overrelaxation sweeps
// per heatbath sweep
void update_sweeps(HostGaugeField& u, double beta, int n_sweeps, int n_or,
                   std::mt19937_64& rng);

} // namespace quda::gauge
