#include "gauge/update.h"

#include <cmath>

namespace quda::gauge {

namespace {

// a 2x2 complex matrix in quaternion form: a0 + i (a1 s1 + a2 s2 + a3 s3);
// SU(2) iff a0^2 + |a|^2 = 1
struct Quat {
  double a0 = 1, a1 = 0, a2 = 0, a3 = 0;

  Quat mult(const Quat& o) const {
    // quaternion product (Pauli algebra)
    return {a0 * o.a0 - a1 * o.a1 - a2 * o.a2 - a3 * o.a3,
            a0 * o.a1 + a1 * o.a0 - a2 * o.a3 + a3 * o.a2,
            a0 * o.a2 + a2 * o.a0 - a3 * o.a1 + a1 * o.a3,
            a0 * o.a3 + a3 * o.a0 - a1 * o.a2 + a2 * o.a1};
  }
  Quat conjugated() const { return {a0, -a1, -a2, -a3}; }
  double norm2() const { return a0 * a0 + a1 * a1 + a2 * a2 + a3 * a3; }
};

// the three SU(2) subgroup embeddings of SU(3)
constexpr int kSub[3][2] = {{0, 1}, {0, 2}, {1, 2}};

// extract the SU(2)-proportional part of the 2x2 submatrix (rows/cols i, j)
// of a 3x3 complex matrix: m ~ q * r with q = (a + conj(d), b - conj(c))
Quat su2_part(const SU3<double>& m, int s) {
  const int i = kSub[s][0], j = kSub[s][1];
  const complexd a = m.e[i][i], b = m.e[i][j], c = m.e[j][i], d = m.e[j][j];
  // q = [[alpha, beta], [-conj(beta), conj(alpha)]] with
  // alpha = (a + conj(d))/2, beta = (b - conj(c))/2; quaternion components:
  // alpha = a0 + i a3, beta = a2 + i a1
  const complexd alpha = (a + conj(d)) * 0.5;
  const complexd beta = (b - conj(c)) * 0.5;
  return {alpha.re, beta.im, beta.re, alpha.im};
}

// embed an SU(2) quaternion into SU(3) at subgroup s (identity elsewhere)
SU3<double> embed(const Quat& q, int s) {
  const int i = kSub[s][0], j = kSub[s][1];
  SU3<double> m = SU3<double>::identity();
  m.e[i][i] = complexd(q.a0, q.a3);
  m.e[i][j] = complexd(q.a2, q.a1);
  m.e[j][i] = complexd(-q.a2, q.a1);
  m.e[j][j] = complexd(q.a0, -q.a3);
  return m;
}

// Kennedy-Pendleton: sample a0 with density ~ sqrt(1 - a0^2) exp(xi * a0)
// on [-1, 1]; returns trials used (for the acceptance diagnostic)
int kp_sample_a0(double xi, std::mt19937_64& rng, double& a0) {
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  int trials = 0;
  while (true) {
    ++trials;
    const double r1 = 1.0 - uni(rng); // (0, 1]
    const double r2 = uni(rng);
    const double r3 = 1.0 - uni(rng);
    const double c = std::cos(2.0 * M_PI * r2);
    const double lambda2 = -(std::log(r1) + c * c * std::log(r3)) / (2.0 * xi);
    const double r4 = uni(rng);
    if (r4 * r4 <= 1.0 - lambda2) {
      a0 = 1.0 - 2.0 * lambda2;
      return trials;
    }
    if (trials > 1000) { // numerically extreme xi: fall back to the mode
      a0 = 1.0;
      return trials;
    }
  }
}

// random direction on S^2 scaled to radius r
void random_vector(double r, std::mt19937_64& rng, double& x, double& y, double& z) {
  std::uniform_real_distribution<double> uni(-1.0, 1.0);
  double nx, ny, nz, n2;
  do {
    nx = uni(rng);
    ny = uni(rng);
    nz = uni(rng);
    n2 = nx * nx + ny * ny + nz * nz;
  } while (n2 > 1.0 || n2 < 1e-12);
  const double inv = r / std::sqrt(n2);
  x = nx * inv;
  y = ny * inv;
  z = nz * inv;
}

double re_tr_prod_dag(const SU3<double>& a, const SU3<double>& b) {
  // Re tr(a * b^dag)
  double s = 0;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      s += a.e[r][c].re * b.e[r][c].re + a.e[r][c].im * b.e[r][c].im;
  return s;
}

SU3<double> random_near_identity(double step, std::mt19937_64& rng) {
  std::normal_distribution<double> d(0.0, step);
  SU3<double> m = SU3<double>::identity();
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) m.e[r][c] += complexd(d(rng), d(rng));
  return reunitarize(m);
}

} // namespace

SU3<double> staple_sum(const HostGaugeField& u, const Coords& x, int mu) {
  const Geometry& g = u.geom();
  SU3<double> k{};
  const Coords xmu = g.neighbor(x, mu, +1);
  for (int nu = 0; nu < 4; ++nu) {
    if (nu == mu) continue;
    // forward staple: U_nu(x+mu) U_mu(x+nu)^dag U_nu(x)^dag ... as part of
    // Re tr(U_mu(x) K^dag) with K = U_nu(x) U_mu(x+nu) U_nu(x+mu)^dag
    {
      const Coords xnu = g.neighbor(x, nu, +1);
      k += u.link(nu, x) * u.link(mu, xnu) * adjoint(u.link(nu, xmu));
    }
    // backward staple: K = U_nu(x-nu)^dag U_mu(x-nu) U_nu(x+mu-nu)
    {
      const Coords xmnu = g.neighbor(x, nu, -1);
      const Coords xmu_mnu = g.neighbor(xmu, nu, -1);
      k += adjoint(u.link(nu, xmnu)) * u.link(mu, xmnu) * u.link(nu, xmu_mnu);
    }
  }
  return k;
}

double heatbath_sweep(HostGaugeField& u, double beta, std::mt19937_64& rng) {
  const Geometry& g = u.geom();
  std::int64_t updates = 0, trials = 0;

  for (std::int64_t i = 0; i < g.volume(); ++i) {
    const Coords x = g.coords(i);
    for (int mu = 0; mu < 4; ++mu) {
      const SU3<double> k = staple_sum(u, x, mu);
      for (int s = 0; s < 3; ++s) {
        // W = U K^dag; its SU(2) subgroup part q = a * v, |v| = 1
        const SU3<double> w = u.link(mu, x) * adjoint(k);
        const Quat q = su2_part(w, s);
        const double det = q.norm2();
        if (det < 1e-14) continue; // staple annihilates this subgroup
        const double root = std::sqrt(det);
        // weight exp((beta/3) * Re tr(g W)) restricted to the subgroup is
        // exp(xi * Retr_2(g q) / root) ... with xi = beta * root / 3 * 2 / 2
        const double xi = beta * root * (2.0 / 3.0);

        double a0 = 1.0;
        trials += kp_sample_a0(xi, rng, a0);
        ++updates;
        double a1, a2, a3;
        random_vector(std::sqrt(std::max(0.0, 1.0 - a0 * a0)), rng, a1, a2, a3);
        const Quat a{a0, a1, a2, a3};

        // new subgroup element: g = a * (q / root)^{-1}
        Quat vinv = q.conjugated();
        const double inv = 1.0 / root;
        vinv.a0 *= inv;
        vinv.a1 *= inv;
        vinv.a2 *= inv;
        vinv.a3 *= inv;
        const Quat gq = a.mult(vinv);
        u.link(mu, x) = embed(gq, s) * u.link(mu, x);
      }
      u.link(mu, x) = reunitarize(u.link(mu, x)); // control rounding drift
    }
  }
  return updates > 0 ? static_cast<double>(updates) / static_cast<double>(trials) : 1.0;
}

void overrelax_sweep(HostGaugeField& u, std::mt19937_64& rng) {
  (void)rng;
  const Geometry& g = u.geom();
  for (std::int64_t i = 0; i < g.volume(); ++i) {
    const Coords x = g.coords(i);
    for (int mu = 0; mu < 4; ++mu) {
      const SU3<double> k = staple_sum(u, x, mu);
      for (int s = 0; s < 3; ++s) {
        const SU3<double> w = u.link(mu, x) * adjoint(k);
        const Quat q = su2_part(w, s);
        const double det = q.norm2();
        if (det < 1e-14) continue;
        // reflect: g = v^dag * v^dag with v = q/|q| flips the subgroup
        // component about the action minimum, preserving Re tr(g W)
        Quat v = q;
        const double inv = 1.0 / std::sqrt(det);
        v.a0 *= inv;
        v.a1 *= inv;
        v.a2 *= inv;
        v.a3 *= inv;
        const Quat g2 = v.conjugated().mult(v.conjugated());
        u.link(mu, x) = embed(g2, s) * u.link(mu, x);
      }
      u.link(mu, x) = reunitarize(u.link(mu, x));
    }
  }
}

double metropolis_sweep(HostGaugeField& u, double beta, double step, int hits,
                        std::mt19937_64& rng) {
  const Geometry& g = u.geom();
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::int64_t accepted = 0, proposed = 0;

  for (std::int64_t i = 0; i < g.volume(); ++i) {
    const Coords x = g.coords(i);
    for (int mu = 0; mu < 4; ++mu) {
      const SU3<double> k = staple_sum(u, x, mu);
      for (int h = 0; h < hits; ++h) {
        const SU3<double> r = random_near_identity(step, rng);
        const SU3<double> trial = reunitarize(r * u.link(mu, x));
        const double d_action =
            -(beta / 3.0) * (re_tr_prod_dag(trial, k) - re_tr_prod_dag(u.link(mu, x), k));
        ++proposed;
        if (d_action <= 0.0 || uni(rng) < std::exp(-d_action)) {
          u.link(mu, x) = trial;
          ++accepted;
        }
      }
    }
  }
  return static_cast<double>(accepted) / static_cast<double>(proposed);
}

void update_sweeps(HostGaugeField& u, double beta, int n_sweeps, int n_or,
                   std::mt19937_64& rng) {
  for (int s = 0; s < n_sweeps; ++s) {
    heatbath_sweep(u, beta, rng);
    for (int o = 0; o < n_or; ++o) overrelax_sweep(u, rng);
  }
}

} // namespace quda::gauge
