#pragma once
// Device-resident gauge field in the QUDA blocked layout.
//
// Storage is per direction mu and per parity; each (mu, parity) slab is a
// BlockLayout over the half-volume, padded by one face perpendicular to mu.
// Links are stored full (18 reals), 2-row compressed (12 reals, Section
// V-C1), or in the minimal 8-real parameterization (Clark et al.,
// arXiv:0911.3191) -- the knob that trades reconstruction arithmetic for
// gauge memory traffic on the bandwidth-bound dslash.
//
// Gauge ghost zone (Section VI-B): for a decomposition that cuts dimension
// mu, the link matrices that must be fetched from the backward neighbor are
// the U_mu links of its last slice perpendicular to mu.  Since the pad
// region of the mu slab is exactly one such face in size, the ghost links
// are stored *inside the padding* -- no extra allocation.  (The paper does
// this for the time direction; the multi-dimensional extension applies the
// same trick per cut dimension.)

#include "lattice/geometry.h"
#include "lattice/layout.h"
#include "lattice/precision.h"
#include "su3/su3.h"

#include <array>
#include <cassert>
#include <vector>

namespace quda {

enum class Reconstruct : int {
  Eight = 8,     // phase + second-row parameterization, fully rebuilt in registers
  Twelve = 12,   // 2-row compressed, third row rebuilt in registers
  Eighteen = 18, // full matrix
};

// stored reals per link = the enum value
inline constexpr int reals_per_link(Reconstruct r) { return static_cast<int>(r); }

inline const char* to_string(Reconstruct r) {
  switch (r) {
    case Reconstruct::Eight: return "8";
    case Reconstruct::Twelve: return "12";
    case Reconstruct::Eighteen: return "18";
  }
  return "?";
}

template <typename P> class GaugeField {
public:
  using store_t = typename P::store_t;
  using real_t = typename P::real_t;

  GaugeField() = default;

  // time-partitioned layout: every slab padded by one temporal face
  GaugeField(std::int64_t sites, std::int64_t face_sites, Reconstruct recon) {
    std::array<std::int64_t, 4> pads{face_sites, face_sites, face_sites, face_sites};
    init(sites, pads, recon);
  }

  // general layout: slab mu padded by the face perpendicular to mu, so any
  // dimension can host a gauge ghost
  GaugeField(const Geometry& geom, Reconstruct recon) {
    std::array<std::int64_t, 4> pads;
    for (int mu = 0; mu < 4; ++mu) pads[static_cast<std::size_t>(mu)] = geom.face_sites(mu);
    init(geom.half_volume(), pads, recon);
  }

  Reconstruct reconstruct() const { return recon_; }
  const BlockLayout& layout(int mu = 3) const {
    return layouts_[static_cast<std::size_t>(mu)];
  }
  // temporal face (backward-compatible accessor)
  std::int64_t face_sites() const { return layouts_[3].pad; }
  std::int64_t ghost_capacity(int mu) const { return layouts_[static_cast<std::size_t>(mu)].pad; }

  std::int64_t device_bytes() const { return std::int64_t(data_.size()) * sizeof(store_t); }

  SU3<real_t> load(int mu, Parity parity, std::int64_t cb) const {
    assert(cb >= 0 && cb < layouts_[static_cast<std::size_t>(mu)].sites);
    return load_at(mu, slab_base(mu, parity), cb);
  }

  void store(int mu, Parity parity, std::int64_t cb, const SU3<double>& u) {
    assert(cb >= 0 && cb < layouts_[static_cast<std::size_t>(mu)].sites);
    store_at(mu, slab_base(mu, parity), cb, u);
  }

  // ghost links for a decomposition cutting dimension mu: the U_mu links of
  // the backward neighbor's last slice, living in the pad of the mu slab
  SU3<real_t> load_ghost(int mu, Parity parity, std::int64_t face_site) const {
    assert(face_site >= 0 && face_site < ghost_capacity(mu));
    return load_at(mu, slab_base(mu, parity), layouts_[static_cast<std::size_t>(mu)].sites + face_site);
  }

  void store_ghost(int mu, Parity parity, std::int64_t face_site, const SU3<double>& u) {
    assert(face_site >= 0 && face_site < ghost_capacity(mu));
    store_at(mu, slab_base(mu, parity), layouts_[static_cast<std::size_t>(mu)].sites + face_site, u);
  }

  // temporal wrappers (the paper's 1-D decomposition)
  SU3<real_t> load_ghost(Parity parity, std::int64_t face_site) const {
    return load_ghost(3, parity, face_site);
  }
  void store_ghost(Parity parity, std::int64_t face_site, const SU3<double>& u) {
    store_ghost(3, parity, face_site, u);
  }

  const std::vector<store_t>& raw_data() const { return data_; }

private:
  void init(std::int64_t sites, const std::array<std::int64_t, 4>& pads, Reconstruct recon) {
    recon_ = recon;
    // 18-real (uncompressed) storage is not divisible by a 4-vector, so it
    // always uses 2-vectors (QUDA stores uncompressed links as float2)
    const int nvec = recon == Reconstruct::Eighteen ? 2 : P::nvec;
    std::int64_t off = 0;
    for (int mu = 0; mu < 4; ++mu) {
      layouts_[static_cast<std::size_t>(mu)] =
          BlockLayout(sites, pads[static_cast<std::size_t>(mu)], static_cast<int>(recon), nvec);
      base_[static_cast<std::size_t>(mu)] = off;
      off += 2 * layouts_[static_cast<std::size_t>(mu)].body_size();
    }
    data_.assign(static_cast<std::size_t>(off), store_t{});
  }

  std::int64_t slab_base(int mu, Parity parity) const {
    return base_[static_cast<std::size_t>(mu)] +
           parity_int(parity) * layouts_[static_cast<std::size_t>(mu)].body_size();
  }

  // load_at/store_at walk the blocked layout incrementally (idx + w inside
  // the current short vector, idx stepping one block stride when it fills),
  // matching l.index(x, n) without per-component integer division
  SU3<real_t> load_at(int mu, std::int64_t base, std::int64_t x) const {
    const BlockLayout& l = layouts_[static_cast<std::size_t>(mu)];
    const int nvec = l.nvec;
    const std::int64_t bstep = std::int64_t(nvec) * l.stride();
    std::int64_t idx = base + std::int64_t(nvec) * x;
    int w = 0;
    if (recon_ == Reconstruct::Eight) {
      SU3Packed8<real_t> p;
      for (int k = 0; k < 8; ++k) {
        real_t v = raw(idx + w);
        if constexpr (P::value == Precision::Half)
          if (k < 2) v = unit_to_phase(v); // phases are stored as theta/pi
        p.v[static_cast<std::size_t>(k)] = v;
        ++w;
        if (w == nvec) {
          w = 0;
          idx += bstep;
        }
      }
      return unpack_eight(p);
    }
    const int rows = (recon_ == Reconstruct::Twelve) ? 2 : 3;
    SU3<real_t> u;
    for (int r = 0; r < rows; ++r)
      for (int c = 0; c < 3; ++c) {
        u.e[r][c] = Complex<real_t>(raw(idx + w), raw(idx + w + 1));
        w += 2;
        if (w == nvec) {
          w = 0;
          idx += bstep;
        }
      }
    if (recon_ == Reconstruct::Twelve) u.e[2] = reconstruct_third_row(u.e[0], u.e[1]);
    return u;
  }

  void store_at(int mu, std::int64_t base, std::int64_t x, const SU3<double>& u) {
    const BlockLayout& l = layouts_[static_cast<std::size_t>(mu)];
    const int nvec = l.nvec;
    const std::int64_t bstep = std::int64_t(nvec) * l.stride();
    std::int64_t idx = base + std::int64_t(nvec) * x;
    int w = 0;
    if (recon_ == Reconstruct::Eight) {
      const SU3Packed8<double> p = pack_eight(u);
      for (int k = 0; k < 8; ++k) {
        real_t v = static_cast<real_t>(p.v[static_cast<std::size_t>(k)]);
        if constexpr (P::value == Precision::Half)
          if (k < 2) v = phase_to_unit(v); // keep the fixed-point range
        set_raw(idx + w, v);
        ++w;
        if (w == nvec) {
          w = 0;
          idx += bstep;
        }
      }
      return;
    }
    const int rows = (recon_ == Reconstruct::Twelve) ? 2 : 3;
    for (int r = 0; r < rows; ++r)
      for (int c = 0; c < 3; ++c) {
        set_raw(idx + w, static_cast<real_t>(u.e[r][c].re));
        set_raw(idx + w + 1, static_cast<real_t>(u.e[r][c].im));
        w += 2;
        if (w == nvec) {
          w = 0;
          idx += bstep;
        }
      }
  }

  real_t raw(std::int64_t i) const {
    const store_t v = data_[static_cast<std::size_t>(i)];
    if constexpr (P::value == Precision::Half)
      return from_half(v);
    else
      return static_cast<real_t>(v);
  }

  void set_raw(std::int64_t i, real_t v) {
    if constexpr (P::value == Precision::Half)
      data_[static_cast<std::size_t>(i)] = to_half(static_cast<float>(v));
    else
      data_[static_cast<std::size_t>(i)] = static_cast<store_t>(v);
  }

  Reconstruct recon_ = Reconstruct::Twelve;
  std::array<BlockLayout, 4> layouts_{};
  std::array<std::int64_t, 4> base_{};
  std::vector<store_t> data_;
};

using GaugeFieldD = GaugeField<PrecDouble>;
using GaugeFieldS = GaugeField<PrecSingle>;
using GaugeFieldH = GaugeField<PrecHalf>;

} // namespace quda
