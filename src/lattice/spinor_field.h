#pragma once
// Device-resident color-spinor fields in the QUDA blocked layout, over a
// single parity (the solvers work on the even-odd preconditioned system, so
// all solver vectors are single-parity).
//
// Ghost zones: rather than placing received faces in the padding (which
// would double-count them in the reduction kernels), the field is oversized
// by an *end zone* holding the projected faces -- 12 reals per face site --
// exactly as described in Section VI-C.  The paper's decomposition divides
// only the time dimension (two faces); the multi-dimensional extension it
// lists as future work generalizes the end zone to two faces per
// partitioned dimension.  In half precision the norm array grows its own
// end zone (one float per face site).

#include "exec/host_engine.h"
#include "lattice/geometry.h"
#include "lattice/layout.h"
#include "lattice/precision.h"
#include "su3/spinor.h"

#include <array>
#include <cassert>
#include <cmath>
#include <vector>

namespace quda {

// which dimensions of the local lattice have off-rank neighbors
using PartitionMask = std::array<bool, 4>;

inline constexpr PartitionMask kPartitionTimeOnly{false, false, false, true};
inline constexpr PartitionMask kPartitionNone{false, false, false, false};

// which end-zone face a ghost half-spinor belongs to
enum class GhostFace : int {
  Backward = 0, // received from the backward (coord-1) neighbor: P+mu projected
  Forward = 1,  // received from the forward neighbor: P-mu projected
};

template <typename P> class SpinorField {
public:
  using store_t = typename P::store_t;
  using real_t = typename P::real_t;
  static constexpr int kNint = 24;      // 4 spin x 3 color complex
  static constexpr int kFaceReals = 12; // projected half-spinor

  SpinorField() = default;

  // time-partitioned layout (the paper's production configuration):
  // `sites` single-parity sites, `face_sites` single-parity temporal face,
  // `pad` pad sites per block (defaults to one temporal face)
  SpinorField(std::int64_t sites, std::int64_t face_sites, std::int64_t pad = -1)
      : layout_(sites, pad < 0 ? face_sites : pad, kNint, P::nvec) {
    ghost_sites_[3] = face_sites;
    allocate();
  }

  explicit SpinorField(const Geometry& geom)
      : SpinorField(geom, kPartitionTimeOnly) {}

  // general decomposition: one pair of ghost faces per partitioned dimension
  SpinorField(const Geometry& geom, const PartitionMask& partitioned)
      : layout_(geom.half_volume(), geom.half_spatial_volume(), kNint, P::nvec) {
    for (int mu = 0; mu < 4; ++mu)
      if (partitioned[mu]) ghost_sites_[mu] = geom.face_sites(mu);
    allocate();
  }

  // a fresh field with the same shape (sites, pad, ghost configuration)
  static SpinorField like(const SpinorField& o) {
    SpinorField f;
    f.layout_ = o.layout_;
    f.ghost_sites_ = o.ghost_sites_;
    f.allocate();
    return f;
  }

  std::int64_t sites() const { return layout_.sites; }
  const BlockLayout& layout() const { return layout_; }

  // temporal face (backward-compatible accessor used by the 1-D paths)
  std::int64_t face_sites() const { return ghost_sites_[3]; }
  std::int64_t ghost_sites(int mu) const { return ghost_sites_[static_cast<std::size_t>(mu)]; }

  std::int64_t ghost_reals() const {
    std::int64_t r = 0;
    for (std::int64_t s : ghost_sites_) r += 2 * s * kFaceReals;
    return r;
  }

  // device memory footprint in bytes (body + ghost + norm array)
  std::int64_t device_bytes() const {
    std::int64_t b = (layout_.body_size() + ghost_reals()) * std::int64_t(sizeof(store_t));
    if constexpr (P::has_norm) b += std::int64_t(norm_.size()) * sizeof(float);
    return b;
  }

  // load/store walk the blocked layout incrementally: component pairs sit at
  // idx + w inside the current short vector, and idx jumps one block stride
  // when the vector is full -- same flat indices as layout_.index(site, n)
  // without the per-component integer division
  Spinor<real_t> load(std::int64_t site) const {
    assert(site >= 0 && site < layout_.sites);
    Spinor<real_t> s;
    const real_t scale = load_scale(site);
    const int nvec = layout_.nvec;
    const std::int64_t bstep = std::int64_t(nvec) * layout_.stride();
    std::int64_t idx = std::int64_t(nvec) * site;
    int w = 0;
    for (std::size_t spin = 0; spin < 4; ++spin)
      for (std::size_t c = 0; c < 3; ++c) {
        const real_t re = raw(idx + w) * scale;
        const real_t im = raw(idx + w + 1) * scale;
        s.s[spin][c] = Complex<real_t>(re, im);
        w += 2;
        if (w == nvec) {
          w = 0;
          idx += bstep;
        }
      }
    return s;
  }

  void store(std::int64_t site, const Spinor<real_t>& s) {
    assert(site >= 0 && site < layout_.sites);
    real_t inv = 1;
    if constexpr (P::has_norm) {
      float m = static_cast<float>(max_abs(s));
      if (m == 0.0f) m = 1e-37f;
      norm_[static_cast<std::size_t>(site)] = m;
      inv = real_t(1) / m;
    }
    const int nvec = layout_.nvec;
    const std::int64_t bstep = std::int64_t(nvec) * layout_.stride();
    std::int64_t idx = std::int64_t(nvec) * site;
    int w = 0;
    for (std::size_t spin = 0; spin < 4; ++spin)
      for (std::size_t c = 0; c < 3; ++c) {
        set_raw(idx + w, s.s[spin][c].re * inv);
        set_raw(idx + w + 1, s.s[spin][c].im * inv);
        w += 2;
        if (w == nvec) {
          w = 0;
          idx += bstep;
        }
      }
  }

  // --- ghost end zone --------------------------------------------------------

  HalfSpinor<real_t> load_ghost(int mu, GhostFace face, std::int64_t fs) const {
    assert(fs >= 0 && fs < ghost_sites(mu));
    HalfSpinor<real_t> h;
    const std::int64_t base = ghost_base(mu, face, fs);
    real_t scale = 1;
    if constexpr (P::has_norm) scale = ghost_norm(mu, face, fs);
    int n = 0;
    for (std::size_t spin = 0; spin < 2; ++spin)
      for (std::size_t c = 0; c < 3; ++c) {
        h.s[spin][c] = Complex<real_t>(raw(base + n) * scale, raw(base + n + 1) * scale);
        n += 2;
      }
    return h;
  }

  void store_ghost(int mu, GhostFace face, std::int64_t fs, const HalfSpinor<real_t>& h,
                   float norm = 1.0f) {
    assert(fs >= 0 && fs < ghost_sites(mu));
    const std::int64_t base = ghost_base(mu, face, fs);
    real_t inv = 1;
    if constexpr (P::has_norm) {
      set_ghost_norm(mu, face, fs, norm);
      inv = norm > 0 ? real_t(1) / norm : real_t(0);
    }
    int n = 0;
    for (std::size_t spin = 0; spin < 2; ++spin)
      for (std::size_t c = 0; c < 3; ++c) {
        set_raw(base + n, h.s[spin][c].re * inv);
        set_raw(base + n + 1, h.s[spin][c].im * inv);
        n += 2;
      }
  }

  // temporal-face convenience wrappers (the paper's 1-D decomposition)
  HalfSpinor<real_t> load_ghost(GhostFace face, std::int64_t fs) const {
    return load_ghost(3, face, fs);
  }
  void store_ghost(GhostFace face, std::int64_t fs, const HalfSpinor<real_t>& h,
                   float norm = 1.0f) {
    store_ghost(3, face, fs, h, norm);
  }

  float ghost_norm(int mu, GhostFace face, std::int64_t fs) const {
    if constexpr (P::has_norm)
      return norm_[static_cast<std::size_t>(norm_ghost_index(mu, face, fs))];
    else
      return 1.0f;
  }

  void zero() {
    data_.assign(data_.size(), store_t{});
    if constexpr (P::has_norm) norm_.assign(norm_.size(), 0.0f);
  }

  // direct access for layout tests and the face-packing code
  const std::vector<store_t>& raw_data() const { return data_; }
  std::vector<store_t>& raw_data() { return data_; }

  // norm array (empty unless P::has_norm); exposed for the block-span
  // conversion fast path, which reads/writes norms alongside the payload
  const std::vector<float>& norm_data() const { return norm_; }
  std::vector<float>& norm_data() { return norm_; }

private:
  void allocate() {
    std::int64_t ghost_off = layout_.body_size();
    std::int64_t norm_off = layout_.sites;
    for (int mu = 0; mu < 4; ++mu) {
      ghost_offset_[static_cast<std::size_t>(mu)] = ghost_off;
      norm_ghost_offset_[static_cast<std::size_t>(mu)] = norm_off;
      ghost_off += 2 * ghost_sites_[static_cast<std::size_t>(mu)] * kFaceReals;
      norm_off += 2 * ghost_sites_[static_cast<std::size_t>(mu)];
    }
    data_.assign(static_cast<std::size_t>(ghost_off), store_t{});
    if constexpr (P::has_norm) norm_.assign(static_cast<std::size_t>(norm_off), 0.0f);
  }

  real_t load_scale(std::int64_t site) const {
    if constexpr (P::has_norm)
      return norm_[static_cast<std::size_t>(site)];
    else
      return real_t(1);
  }

  std::int64_t norm_ghost_index(int mu, GhostFace face, std::int64_t fs) const {
    return norm_ghost_offset_[static_cast<std::size_t>(mu)] +
           static_cast<int>(face) * ghost_sites(mu) + fs;
  }

  void set_ghost_norm(int mu, GhostFace face, std::int64_t fs, float v) {
    if constexpr (P::has_norm)
      norm_[static_cast<std::size_t>(norm_ghost_index(mu, face, fs))] = v;
  }

  std::int64_t ghost_base(int mu, GhostFace face, std::int64_t fs) const {
    // per dimension: the backward face occupies the first half of that
    // dimension's end zone, the forward face the second (Section VI-C)
    return ghost_offset_[static_cast<std::size_t>(mu)] +
           (static_cast<int>(face) * ghost_sites(mu) + fs) * kFaceReals;
  }

  real_t raw(std::int64_t i) const {
    const store_t v = data_[static_cast<std::size_t>(i)];
    if constexpr (P::value == Precision::Half)
      return from_half(v);
    else
      return static_cast<real_t>(v);
  }

  void set_raw(std::int64_t i, real_t v) {
    if constexpr (P::value == Precision::Half)
      data_[static_cast<std::size_t>(i)] = to_half(static_cast<float>(v));
    else
      data_[static_cast<std::size_t>(i)] = static_cast<store_t>(v);
  }

  BlockLayout layout_{};
  std::array<std::int64_t, 4> ghost_sites_{};
  std::array<std::int64_t, 4> ghost_offset_{};
  std::array<std::int64_t, 4> norm_ghost_offset_{};
  std::vector<store_t> data_;
  std::vector<float> norm_;
};

using SpinorFieldD = SpinorField<PrecDouble>;
using SpinorFieldS = SpinorField<PrecSingle>;
using SpinorFieldH = SpinorField<PrecHalf>;

// precision conversion, site-by-site through the compute type (the general
// path: works for any precision pair and any layout shapes)
template <typename PDst, typename PSrc>
void convert_field_generic(const SpinorField<PSrc>& src, SpinorField<PDst>& dst) {
  assert(src.sites() == dst.sites());
  exec::parallel_for(0, src.sites(), exec::kBlasGrain, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      const auto s = src.load(i);
      Spinor<typename PDst::real_t> d;
      for (std::size_t spin = 0; spin < 4; ++spin)
        for (std::size_t c = 0; c < 3; ++c)
          d.s[spin][c] = Complex<typename PDst::real_t>(
              static_cast<typename PDst::real_t>(s.s[spin][c].re),
              static_cast<typename PDst::real_t>(s.s[spin][c].im));
      dst.store(i, d);
    }
  });
}

namespace detail {
// two blocked layouts describe the same flat index space, so a block span
// in one field is the same span in the other
inline bool same_shape(const BlockLayout& a, const BlockLayout& b) {
  return a.sites == b.sites && a.pad == b.pad && a.nint == b.nint && a.nvec == b.nvec;
}
} // namespace detail

// Precision conversion.  The hot mixed-precision pairs (single <-> half,
// which share nvec = 4) take a vectorizable fast path when the layouts
// match: the blocked layout is walked as Nint/Nvec contiguous per-block
// spans so the inner loops are unit-stride over plain arrays, instead of
// the strided per-site component walk of load()/store().  The fast path is
// bit-identical to the generic one -- per element the same expression is
// evaluated in the same precision, and the per-site norm is an
// order-insensitive max -- and it parallelizes over the same kBlasGrain
// site grains, so results match at any QUDA_SIM_THREADS.
template <typename PDst, typename PSrc>
void convert_field(const SpinorField<PSrc>& src, SpinorField<PDst>& dst) {
  assert(src.sites() == dst.sites());
  constexpr bool kSameVec = PSrc::nvec == PDst::nvec;
  constexpr bool kExpand = kSameVec && PSrc::has_norm && !PDst::has_norm;   // half -> float
  constexpr bool kQuantize = kSameVec && !PSrc::has_norm && PDst::has_norm; // float -> half
  if constexpr (kExpand || kQuantize) {
    if (detail::same_shape(src.layout(), dst.layout())) {
      const BlockLayout& lay = src.layout();
      const int nvec = lay.nvec;
      const int nblocks = lay.blocks();
      const std::int64_t bstep = std::int64_t(nvec) * lay.stride();
      const auto* sdat = src.raw_data().data();
      auto* ddat = dst.raw_data().data();
      exec::parallel_for(0, lay.sites, exec::kBlasGrain, [&](std::int64_t b, std::int64_t e) {
        const std::int64_t n = e - b;
        if constexpr (kExpand) {
          const float* nrm = src.norm_data().data() + b;
          for (int j = 0; j < nblocks; ++j) {
            const auto* s = sdat + j * bstep + std::int64_t(nvec) * b;
            auto* d = ddat + j * bstep + std::int64_t(nvec) * b;
            for (std::int64_t i = 0; i < n; ++i) {
              const auto scale = static_cast<typename PDst::real_t>(nrm[i]);
              for (int w = 0; w < nvec; ++w)
                d[i * nvec + w] =
                    static_cast<typename PDst::store_t>(from_half(s[i * nvec + w]) * scale);
            }
          }
        } else { // quantize: per-site max first, then scale into the 16-bit payload
          float* nrm = dst.norm_data().data() + b;
          for (std::int64_t i = 0; i < n; ++i) nrm[i] = 0.0f;
          for (int j = 0; j < nblocks; ++j) {
            const auto* s = sdat + j * bstep + std::int64_t(nvec) * b;
            for (std::int64_t i = 0; i < n; ++i)
              for (int w = 0; w < nvec; ++w) {
                const float a = std::fabs(static_cast<float>(s[i * nvec + w]));
                if (a > nrm[i]) nrm[i] = a;
              }
          }
          for (std::int64_t i = 0; i < n; ++i)
            if (nrm[i] == 0.0f) nrm[i] = 1e-37f; // store()'s zero-vector rule
          for (int j = 0; j < nblocks; ++j) {
            const auto* s = sdat + j * bstep + std::int64_t(nvec) * b;
            auto* d = ddat + j * bstep + std::int64_t(nvec) * b;
            for (std::int64_t i = 0; i < n; ++i) {
              const float inv = 1.0f / nrm[i];
              for (int w = 0; w < nvec; ++w)
                d[i * nvec + w] = to_half(static_cast<float>(s[i * nvec + w]) * inv);
            }
          }
        }
      });
      return;
    }
  }
  convert_field_generic(src, dst);
}

} // namespace quda
