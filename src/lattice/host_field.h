#pragma once
// Host-side ("CPU-ordered") fields: the naive ordering of equation (3) --
// spacetime slowest, internal indices fastest -- used by the application
// (Chroma/QDP++) side of the interface and by the reference operators.
// Always double precision and over the full (both-parity) lattice.

#include "lattice/geometry.h"
#include "su3/clover_block.h"
#include "su3/spinor.h"
#include "su3/su3.h"

#include <vector>

namespace quda {

class HostSpinorField {
public:
  HostSpinorField() = default;
  explicit HostSpinorField(const Geometry& geom)
      : geom_(geom), sites_(static_cast<std::size_t>(geom.volume())) {}

  const Geometry& geom() const { return geom_; }

  Spinor<double>& operator[](std::int64_t linear) { return sites_[static_cast<std::size_t>(linear)]; }
  const Spinor<double>& operator[](std::int64_t linear) const {
    return sites_[static_cast<std::size_t>(linear)];
  }

  Spinor<double>& at(const Coords& c) { return (*this)[geom_.linear_index(c)]; }
  const Spinor<double>& at(const Coords& c) const { return (*this)[geom_.linear_index(c)]; }

  void zero() { sites_.assign(sites_.size(), Spinor<double>{}); }

private:
  Geometry geom_;
  std::vector<Spinor<double>> sites_;
};

inline double norm2(const HostSpinorField& f) {
  double n = 0;
  for (std::int64_t i = 0; i < f.geom().volume(); ++i) n += norm2(f[i]);
  return n;
}

class HostGaugeField {
public:
  HostGaugeField() = default;
  explicit HostGaugeField(const Geometry& geom)
      : geom_(geom), links_(static_cast<std::size_t>(4 * geom.volume())) {}

  const Geometry& geom() const { return geom_; }

  // U_mu(x): the link from x to x+mu, stored at x (Section V-B convention)
  SU3<double>& link(int mu, std::int64_t linear) {
    return links_[static_cast<std::size_t>(mu * geom_.volume() + linear)];
  }
  const SU3<double>& link(int mu, std::int64_t linear) const {
    return links_[static_cast<std::size_t>(mu * geom_.volume() + linear)];
  }
  SU3<double>& link(int mu, const Coords& c) { return link(mu, geom_.linear_index(c)); }
  const SU3<double>& link(int mu, const Coords& c) const {
    return link(mu, geom_.linear_index(c));
  }

  void set_identity() {
    for (auto& u : links_) u = SU3<double>::identity();
  }

private:
  Geometry geom_;
  std::vector<SU3<double>> links_;
};

class HostCloverField {
public:
  HostCloverField() = default;
  explicit HostCloverField(const Geometry& geom)
      : geom_(geom), sites_(static_cast<std::size_t>(geom.volume())) {}

  const Geometry& geom() const { return geom_; }

  CloverSite<double>& operator[](std::int64_t linear) {
    return sites_[static_cast<std::size_t>(linear)];
  }
  const CloverSite<double>& operator[](std::int64_t linear) const {
    return sites_[static_cast<std::size_t>(linear)];
  }

private:
  Geometry geom_;
  std::vector<CloverSite<double>> sites_;
};

} // namespace quda
