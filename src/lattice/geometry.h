#pragma once
// 4-D lattice geometry: coordinates, linear indices, even-odd (red-black)
// checkerboarding, and neighbor arithmetic.
//
// Conventions:
//  * dimensions are ordered {X, Y, Z, T}; mu = 0..2 spatial, mu = 3 temporal;
//  * the linear ("lexicographic") site index runs x fastest, t slowest:
//      i = x + X*(y + Y*(z + Z*t))
//    so the two faces on the temporal boundaries are contiguous (Fig. 2);
//  * parity(x) = (x+y+z+t) mod 2; 0 = even, 1 = odd;
//  * the checkerboard (cb) index of a site within its parity is i/2, which
//    is a bijection because X is required to be even.

#include <array>
#include <cstdint>
#include <string>

namespace quda {

using Coords = std::array<int, 4>;

enum class Parity : int { Even = 0, Odd = 1 };

// temporal fermion boundary condition (spatial BCs are periodic)
enum class TimeBoundary { Periodic, Antiperiodic };

inline Parity other(Parity p) { return p == Parity::Even ? Parity::Odd : Parity::Even; }
inline int parity_int(Parity p) { return static_cast<int>(p); }

struct LatticeDims {
  int x = 0, y = 0, z = 0, t = 0;

  constexpr int operator[](int mu) const {
    return mu == 0 ? x : mu == 1 ? y : mu == 2 ? z : t;
  }
  constexpr std::int64_t volume() const {
    return std::int64_t(x) * y * z * t;
  }
  constexpr std::int64_t spatial_volume() const { return std::int64_t(x) * y * z; }

  std::string to_string() const;

  friend constexpr bool operator==(const LatticeDims&, const LatticeDims&) = default;
};

class Geometry {
public:
  Geometry() = default;
  explicit Geometry(LatticeDims dims);

  const LatticeDims& dims() const { return dims_; }
  std::int64_t volume() const { return volume_; }
  std::int64_t spatial_volume() const { return vs_; }
  // sites of one parity
  std::int64_t half_volume() const { return volume_ / 2; }
  // spatial sites of one parity (the size of a temporal face per parity)
  std::int64_t half_spatial_volume() const { return vs_ / 2; }

  std::int64_t linear_index(const Coords& c) const;
  Coords coords(std::int64_t linear) const;

  static Parity site_parity(const Coords& c) {
    return ((c[0] + c[1] + c[2] + c[3]) & 1) ? Parity::Odd : Parity::Even;
  }

  std::int64_t cb_index(const Coords& c) const { return linear_index(c) / 2; }

  // inverse of cb_index for a given parity
  Coords cb_coords(Parity parity, std::int64_t cb) const;

  // coordinates shifted by +/-1 in direction mu with periodic wrap
  Coords neighbor(const Coords& c, int mu, int dir) const;

  // true when moving from c by dir in mu wraps around the lattice edge
  bool crosses_boundary(const Coords& c, int mu, int dir) const {
    return dir > 0 ? c[mu] == dims_[mu] - 1 : c[mu] == 0;
  }

  // --- faces (for the halo exchange) ---------------------------------------
  //
  // The face perpendicular to direction mu contains V / L_mu sites; half of
  // them per parity.  Face sites are indexed by checkerboarding the
  // lexicographic order of the three remaining dimensions (lowest dimension
  // fastest), which requires that lowest dimension to be even -- the
  // multi-dimensional decomposition therefore requires all-even local
  // dimensions.

  std::int64_t face_sites(int mu) const { return volume_ / dims_[mu] / 2; }

  // face checkerboard index of a site (its c[mu] is ignored)
  std::int64_t face_index(int mu, const Coords& c) const;

  // inverse: the coordinates of face site `fs` on slice c[mu] = slice for a
  // field of parity `field_parity`
  Coords face_site_coords(int mu, Parity field_parity, int slice, std::int64_t fs) const;

private:
  LatticeDims dims_{};
  std::int64_t volume_ = 0;
  std::int64_t vs_ = 0;
};

} // namespace quda
