#pragma once
// The QUDA device-field memory layout (Section V-B of the paper).
//
// A field with Nint internal real components per site over `sites` sites is
// stored as Nint/Nvec blocks of `stride` short vectors of length Nvec
// (equation (4)):
//
//   index(x, n) = Nvec * ( stride * floor(n / Nvec) + x ) + n mod Nvec
//
// with stride = sites + pad.  Successive threads (sites) then read
// successive Nvec-element short vectors, which is what produces coalesced
// memory transactions on the device.  The pad region between blocks breaks
// the power-of-two striding that causes partition camping (equation (5)),
// and -- the trick at the heart of the paper's gauge-field ghost zone -- is
// exactly one temporal face in size, so ghost data can live inside it.

#include <cstdint>
#include <stdexcept>

namespace quda {

struct BlockLayout {
  std::int64_t sites = 0;  // number of lattice sites covered (e.g. V/2 for a parity field)
  std::int64_t pad = 0;    // extra sites of padding per block
  int nint = 0;            // internal real components per site
  int nvec = 0;            // short-vector length (1, 2, or 4)

  BlockLayout() = default;
  BlockLayout(std::int64_t sites_, std::int64_t pad_, int nint_, int nvec_)
      : sites(sites_), pad(pad_), nint(nint_), nvec(nvec_) {
    if (nint % nvec != 0)
      throw std::invalid_argument("Nint must be a multiple of Nvec");
  }

  std::int64_t stride() const { return sites + pad; }
  int blocks() const { return nint / nvec; }

  // total reals allocated for the body (blocks * stride * nvec)
  std::int64_t body_size() const { return std::int64_t(blocks()) * stride() * nvec; }

  // equation (4)/(5): flat index of internal component n at site x
  std::int64_t index(std::int64_t x, int n) const {
    return std::int64_t(nvec) * (stride() * (n / nvec) + x) + n % nvec;
  }

  // flat index of the first element of pad slot `p` (0 <= p < pad) in block b;
  // used to place ghost zones inside the padding
  std::int64_t pad_index(std::int64_t p, int n) const { return index(sites + p, n); }
};

// The Nvec choices the paper reports as optimal: float4 in single precision,
// double2 in double (both 16-byte vectors); half uses short4 (8-byte).
inline int default_nvec_single() { return 4; }
inline int default_nvec_double() { return 2; }
inline int default_nvec_half() { return 4; }

} // namespace quda
