#include "lattice/geometry.h"

#include <sstream>
#include <stdexcept>

namespace quda {

std::string LatticeDims::to_string() const {
  std::ostringstream os;
  os << x << "x" << y << "x" << z << "x" << t;
  return os.str();
}

Geometry::Geometry(LatticeDims dims) : dims_(dims) {
  if (dims.x <= 0 || dims.y <= 0 || dims.z <= 0 || dims.t <= 0)
    throw std::invalid_argument("lattice dimensions must be positive");
  if (dims.x % 2 != 0)
    throw std::invalid_argument("X dimension must be even for checkerboarding");
  volume_ = dims.volume();
  vs_ = dims.spatial_volume();
}

std::int64_t Geometry::linear_index(const Coords& c) const {
  return c[0] +
         std::int64_t(dims_.x) * (c[1] + std::int64_t(dims_.y) * (c[2] + std::int64_t(dims_.z) * c[3]));
}

Coords Geometry::coords(std::int64_t linear) const {
  Coords c;
  c[0] = static_cast<int>(linear % dims_.x);
  linear /= dims_.x;
  c[1] = static_cast<int>(linear % dims_.y);
  linear /= dims_.y;
  c[2] = static_cast<int>(linear % dims_.z);
  c[3] = static_cast<int>(linear / dims_.z);
  return c;
}

Coords Geometry::cb_coords(Parity parity, std::int64_t cb) const {
  // cb indexes pairs of sites along x; the parity selects which of the two
  // x values in the pair belongs to this checkerboard.
  const int xh = dims_.x / 2;
  const int x_half = static_cast<int>(cb % xh);
  std::int64_t rest = cb / xh;
  Coords c;
  c[1] = static_cast<int>(rest % dims_.y);
  rest /= dims_.y;
  c[2] = static_cast<int>(rest % dims_.z);
  c[3] = static_cast<int>(rest / dims_.z);
  const int odd_shift = (c[1] + c[2] + c[3] + parity_int(parity)) & 1;
  c[0] = 2 * x_half + odd_shift;
  return c;
}

std::int64_t Geometry::face_index(int mu, const Coords& c) const {
  // lexicographic index over the three remaining dims, lowest fastest
  std::int64_t lin = 0;
  std::int64_t scale = 1;
  for (int d = 0; d < 4; ++d) {
    if (d == mu) continue;
    lin += c[d] * scale;
    scale *= dims_[d];
  }
  return lin / 2;
}

Coords Geometry::face_site_coords(int mu, Parity field_parity, int slice,
                                  std::int64_t fs) const {
  // remaining dims in increasing order
  int rem[3];
  int k = 0;
  for (int d = 0; d < 4; ++d)
    if (d != mu) rem[k++] = d;

  Coords c{};
  c[mu] = slice;
  // the fastest remaining dim is checkerboarded: reconstruct the other two
  // first, then fix the fastest one's low bit from the site parity
  const int fast = rem[0];
  const std::int64_t half_fast = dims_[fast] / 2;
  const std::int64_t x_half = fs % half_fast;
  std::int64_t rest = fs / half_fast;
  c[rem[1]] = static_cast<int>(rest % dims_[rem[1]]);
  c[rem[2]] = static_cast<int>(rest / dims_[rem[1]]);
  const int odd =
      (c[rem[1]] + c[rem[2]] + slice + parity_int(field_parity)) & 1;
  c[fast] = static_cast<int>(2 * x_half + odd);
  return c;
}

Coords Geometry::neighbor(const Coords& c, int mu, int dir) const {
  Coords n = c;
  const int len = dims_[mu];
  n[mu] += dir;
  if (n[mu] >= len) n[mu] -= len;
  if (n[mu] < 0) n[mu] += len;
  return n;
}

} // namespace quda
