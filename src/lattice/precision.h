#pragma once
// Precision tags for device fields.
//
// Device kernels are templated on one of these tags; the tag supplies the
// storage type, the compute type (half-precision storage computes in float,
// as on the GPU's texture path), the Nvec used for coalescing, and whether a
// separate norm array accompanies the field.

#include "lattice/layout.h"
#include "su3/halfprec.h"

#include <cstdint>
#include <string>

namespace quda {

enum class Precision { Double, Single, Half };

inline const char* to_string(Precision p) {
  switch (p) {
    case Precision::Double: return "double";
    case Precision::Single: return "single";
    case Precision::Half: return "half";
  }
  return "?";
}

inline std::int64_t bytes_per_real(Precision p) {
  switch (p) {
    case Precision::Double: return 8;
    case Precision::Single: return 4;
    case Precision::Half: return 2;
  }
  return 0;
}

struct PrecDouble {
  using store_t = double;
  using real_t = double;
  static constexpr Precision value = Precision::Double;
  static constexpr bool has_norm = false;
  static constexpr int nvec = 2; // double2
};

struct PrecSingle {
  using store_t = float;
  using real_t = float;
  static constexpr Precision value = Precision::Single;
  static constexpr bool has_norm = false;
  static constexpr int nvec = 4; // float4
};

struct PrecHalf {
  using store_t = half_t;
  using real_t = float; // compute in float after normalized-int conversion
  static constexpr Precision value = Precision::Half;
  static constexpr bool has_norm = true;
  static constexpr int nvec = 4; // short4
};

} // namespace quda
