#pragma once
// Device-resident clover field: two packed 6x6 Hermitian chiral blocks per
// site (72 reals, footnote 1 of the paper) in the QUDA blocked layout, one
// slab per parity.  The even-odd preconditioned operator additionally needs
// the *inverse* clover term, which is simply a second CloverField holding
// ((4+m) + A)^{-1} blocks.
//
// In half precision the 72 reals share one norm per site (their dynamic
// range is set by csw * F, which mixes all components).

#include "lattice/geometry.h"
#include "lattice/layout.h"
#include "lattice/precision.h"
#include "su3/clover_block.h"

#include <cassert>
#include <cmath>
#include <vector>

namespace quda {

template <typename P> class CloverField {
public:
  using store_t = typename P::store_t;
  using real_t = typename P::real_t;
  static constexpr int kNint = 72;

  CloverField() = default;

  CloverField(std::int64_t sites, std::int64_t pad)
      : layout_(sites, pad, kNint, P::nvec) {
    slab_ = layout_.body_size();
    data_.assign(static_cast<std::size_t>(2 * slab_), store_t{});
    if constexpr (P::has_norm) norm_.assign(static_cast<std::size_t>(2 * layout_.sites), 0.0f);
  }

  explicit CloverField(const Geometry& geom)
      : CloverField(geom.half_volume(), geom.half_spatial_volume()) {}

  const BlockLayout& layout() const { return layout_; }

  std::int64_t device_bytes() const {
    std::int64_t b = 2 * slab_ * std::int64_t(sizeof(store_t));
    if constexpr (P::has_norm) b += std::int64_t(norm_.size()) * sizeof(float);
    return b;
  }

  CloverSite<real_t> load(Parity parity, std::int64_t cb) const {
    assert(cb >= 0 && cb < layout_.sites);
    const std::int64_t base = parity_int(parity) * slab_;
    real_t scale = 1;
    if constexpr (P::has_norm)
      scale = norm_[static_cast<std::size_t>(parity_int(parity) * layout_.sites + cb)];
    // incremental walk over the blocked layout: idx + w tracks
    // layout_.index(cb, n) as n advances sequentially through the 72 reals
    CloverSite<real_t> site;
    const int nvec = layout_.nvec;
    const std::int64_t bstep = std::int64_t(nvec) * layout_.stride();
    std::int64_t idx = base + std::int64_t(nvec) * cb;
    int w = 0;
    const auto advance = [&](int by) {
      w += by;
      if (w == nvec) {
        w = 0;
        idx += bstep;
      }
    };
    for (int b = 0; b < 2; ++b) {
      for (int d = 0; d < 6; ++d) {
        site.block[b].diag[d] = raw(idx + w) * scale;
        advance(1);
      }
      for (int o = 0; o < 15; ++o) {
        const real_t re = raw(idx + w) * scale;
        const real_t im = raw(idx + w + 1) * scale;
        site.block[b].lower[o] = Complex<real_t>(re, im);
        advance(2);
      }
    }
    return site;
  }

  void store(Parity parity, std::int64_t cb, const CloverSite<double>& site) {
    assert(cb >= 0 && cb < layout_.sites);
    const std::int64_t base = parity_int(parity) * slab_;
    double inv = 1;
    if constexpr (P::has_norm) {
      double m = 0;
      for (int b = 0; b < 2; ++b) {
        for (int d = 0; d < 6; ++d) m = std::max(m, std::abs(site.block[b].diag[d]));
        for (int o = 0; o < 15; ++o) {
          m = std::max(m, std::abs(site.block[b].lower[o].re));
          m = std::max(m, std::abs(site.block[b].lower[o].im));
        }
      }
      if (m == 0) m = 1e-37;
      norm_[static_cast<std::size_t>(parity_int(parity) * layout_.sites + cb)] =
          static_cast<float>(m);
      inv = 1.0 / m;
    }
    int n = 0;
    for (int b = 0; b < 2; ++b) {
      for (int d = 0; d < 6; ++d)
        set_raw(base + layout_.index(cb, n++), static_cast<real_t>(site.block[b].diag[d] * inv));
      for (int o = 0; o < 15; ++o) {
        set_raw(base + layout_.index(cb, n), static_cast<real_t>(site.block[b].lower[o].re * inv));
        set_raw(base + layout_.index(cb, n + 1),
                static_cast<real_t>(site.block[b].lower[o].im * inv));
        n += 2;
      }
    }
  }

private:
  real_t raw(std::int64_t i) const {
    const store_t v = data_[static_cast<std::size_t>(i)];
    if constexpr (P::value == Precision::Half)
      return from_half(v);
    else
      return static_cast<real_t>(v);
  }

  void set_raw(std::int64_t i, real_t v) {
    if constexpr (P::value == Precision::Half)
      data_[static_cast<std::size_t>(i)] = to_half(static_cast<float>(v));
    else
      data_[static_cast<std::size_t>(i)] = static_cast<store_t>(v);
  }

  BlockLayout layout_{};
  std::int64_t slab_ = 0;
  std::vector<store_t> data_;
  std::vector<float> norm_;
};

using CloverFieldD = CloverField<PrecDouble>;
using CloverFieldS = CloverField<PrecSingle>;
using CloverFieldH = CloverField<PrecHalf>;

} // namespace quda
