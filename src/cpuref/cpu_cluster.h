#pragma once
// Model of the companion CPU cluster ("9q" at Jefferson Lab): nodes
// identical to the GPU cluster's -- dual quad-core Nehalem, QDR InfiniBand
// -- but solving with highly optimized SSE routines on the CPUs instead.
// The paper measured 255 Gflops in single precision on a 16-node partition
// (128 cores), about 2 Gflops per core, and uses it as the reference point
// for the "over a factor of 10" GPU speedup claim (Section VII-C).
//
// The real-arithmetic correctness oracle for the CPU path is the
// naive-order reference operator in dirac/wilson_ref.h; this header models
// its *performance* at cluster scale.

#include "lattice/geometry.h"
#include "lattice/precision.h"
#include "perfmodel/costs.h"

namespace quda::cpuref {

inline constexpr int kCoresPerNode = 8; // two quad-core Xeon E5530

// sustained per-core Gflops of the SSE Wilson-clover solver
inline double sse_core_gflops(Precision p) {
  switch (p) {
    case Precision::Single: return 2.0; // the paper's measured ~2 Gflops/core
    case Precision::Double: return 1.1; // half the SSE vector width
    case Precision::Half: return 0.0;   // no 16-bit SSE path
  }
  return 0;
}

// aggregate sustained Gflops of an n-node partition (the solver weak-scales
// essentially perfectly at this modest node count on QDR IB)
inline double cluster_gflops(int nodes, Precision p) {
  return nodes * kCoresPerNode * sse_core_gflops(p);
}

// time for one solver iteration of the even-odd system on the CPU cluster
inline double iteration_time_us(const LatticeDims& global, int nodes, Precision p) {
  const double flops = 2.0 * perf::kMatrixFlopsPerSite * (global.volume() / 2.0) * 1.15;
  return flops / (cluster_gflops(nodes, p) * 1e3);
}

} // namespace quda::cpuref
