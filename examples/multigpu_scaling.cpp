// Multi-GPU scaling walk-through: the same solve on growing simulated GPU
// partitions, demonstrating (a) that the time-sliced decomposition leaves
// the answer unchanged, and (b) how simulated time falls and aggregate
// sustained Gflops rises -- then a paper-scale strong-scaling sweep in
// timing-only mode, comparing the two communication policies.

#include "core/quda_api.h"
#include "dirac/gauge_init.h"
#include "parallel/modeled_solver.h"

#include <cstdio>

using namespace quda;

int main() {
  // --- part 1: real arithmetic on a small lattice ----------------------------
  const Geometry geom({8, 8, 8, 16});
  std::printf("part 1: real solves of an %s system on 1..4 simulated GPUs\n",
              geom.dims().to_string().c_str());

  HostGaugeField gauge(geom);
  make_weak_field_gauge(gauge, 0.2, 31415);
  HostSpinorField b(geom);
  make_random_spinor(b, 92653);

  InvertParams params;
  params.mass = 0.08;
  params.csw = 1.0;
  params.precision = Precision::Double;
  params.tol = 1e-10;
  params.max_iter = 2000;

  HostSpinorField x_ref(geom);
  std::printf("  %4s %10s %14s %14s %18s\n", "GPUs", "iters", "time (ms)", "Gflops",
              "|x - x_1gpu| / |x|");
  for (int ranks : {1, 2, 4}) {
    HostSpinorField x(geom);
    const InvertResult r = invert_multi_gpu(sim::ClusterSpec::jlab_9g(ranks), gauge, b, x, params);
    double diff = 0, den = 0;
    if (ranks == 1) {
      x_ref = x;
    } else {
      for (std::int64_t i = 0; i < geom.volume(); ++i) {
        diff += norm2(x[i] - x_ref[i]);
        den += norm2(x_ref[i]);
      }
    }
    std::printf("  %4d %10d %14.2f %14.1f %18.2e\n", ranks, r.stats.iterations,
                r.simulated_time_us / 1e3, r.effective_gflops,
                ranks == 1 ? 0.0 : std::sqrt(diff / den));
  }

  std::printf("\n  (on a lattice this small the faces dwarf the interior, so adding GPUs\n");
  std::printf("  *slows the solve down* -- the strong-scaling overhead regime; the\n");
  std::printf("  decomposition still changes nothing about the answer, which is the point)\n");

  // --- part 2: paper-scale strong scaling in timing-only mode ----------------
  std::printf("\npart 2: modeled strong scaling of the 32^3 x 256 production lattice\n");
  std::printf("  %4s %24s %24s\n", "GPUs", "no overlap (Gflops)", "overlap (Gflops)");
  for (int ranks : {8, 16, 32}) {
    double gflops[2];
    int k = 0;
    for (CommPolicy policy : {CommPolicy::NoOverlap, CommPolicy::Overlap}) {
      sim::VirtualCluster cluster(sim::ClusterSpec::jlab_9g(ranks));
      parallel::ModeledSolverConfig cfg;
      cfg.local = {32, 32, 32, 256 / ranks};
      cfg.outer = Precision::Single;
      cfg.sloppy = Precision::Half;
      cfg.policy = policy;
      cfg.iterations = 100;
      gflops[k++] = parallel::run_modeled_solver(cluster, cfg).effective_gflops;
    }
    std::printf("  %4d %24.1f %24.1f\n", ranks, gflops[0], gflops[1]);
  }
  std::printf("\n(the overlapped solver pulls ahead as the partition grows -- Fig. 5(a))\n");
  return 0;
}
