// The full two-phase LQCD workflow from the paper's introduction:
//
//   phase 1 -- gauge generation: a Markov chain (heatbath + overrelaxation)
//   produces an ensemble of gauge configurations;
//
//   phase 2 -- analysis: on each configuration, quark propagators are
//   computed by solving M x = b many times, which is exactly the workload
//   the multi-GPU solver library accelerates.
//
// Here we thermalize a small quenched ensemble, watch the plaquette
// equilibrate, and then run the mixed-precision multi-GPU solver on
// configurations drawn from the chain.

#include "core/quda_api.h"
#include "dirac/gauge_init.h"
#include "gauge/update.h"

#include <cstdio>
#include <random>

int main() {
  using namespace quda;

  const Geometry geom({6, 6, 6, 8});
  const double beta = 5.9;
  std::printf("phase 1: quenched gauge generation, %s lattice, beta = %.2f\n",
              geom.dims().to_string().c_str(), beta);

  HostGaugeField u(geom);
  make_unit_gauge(u); // cold start
  std::mt19937_64 rng(2718281828ULL);

  std::printf("  thermalization (1 heatbath + 2 overrelaxation per sweep):\n");
  for (int sweep = 1; sweep <= 30; ++sweep) {
    gauge::update_sweeps(u, beta, 1, 2, rng);
    if (sweep % 5 == 0)
      std::printf("    sweep %2d: plaquette = %.4f\n", sweep, average_plaquette(u));
  }

  std::printf("\nphase 2: propagator solves on configurations from the chain\n");
  InvertParams params;
  params.mass = 0.25; // heavy quark: safely conditioned on a rough ensemble
  params.csw = 1.0;
  params.precision = Precision::Double;
  params.sloppy = Precision::Single;
  params.tol = 1e-8;
  params.max_iter = 4000;
  params.time_bc = TimeBoundary::Antiperiodic;

  const sim::ClusterSpec cluster = sim::ClusterSpec::jlab_9g(2);
  bool all_ok = true;
  for (int cfg = 0; cfg < 3; ++cfg) {
    // decorrelate between measurements
    gauge::update_sweeps(u, beta, 2, 2, rng);

    HostSpinorField b(geom);
    make_point_source(b, {0, 0, 0, 0}, 0, 0);
    HostSpinorField x(geom);
    const InvertResult r = invert_multi_gpu(cluster, u, b, x, params);
    std::printf("  config %d: plaquette %.4f, %4d iters (%d reliable updates), "
                "%8.2f ms simulated, %6.1f Gflops  %s\n",
                cfg, average_plaquette(u), r.stats.iterations, r.stats.reliable_updates,
                r.simulated_time_us / 1e3, r.effective_gflops,
                r.stats.converged ? "" : "NOT CONVERGED");
    all_ok = all_ok && r.stats.converged;
  }

  std::printf("\n(the paper's Section VIII lists gauge generation on GPU clusters as\n");
  std::printf("future work; this example runs both workflow phases end to end)\n");
  return all_ok ? 0 : 1;
}
