// Precision study: the same physical system solved in every mode the
// library provides -- uniform double/single, mixed double-half /
// single-half / double-single with reliable updates, and the
// defect-correction baseline -- reporting iterations, reliable updates,
// achieved residual, and simulated solver time.  A compact tour of Section
// V-D's design space.

#include "core/quda_api.h"
#include "dirac/gauge_init.h"

#include <cstdio>
#include <optional>

using namespace quda;

namespace {

struct Mode {
  const char* label;
  Precision outer;
  std::optional<Precision> sloppy;
  MixedStrategy strategy;
  double tol;
  double delta;
};

} // namespace

int main() {
  const Geometry geom({8, 8, 8, 16});
  HostGaugeField gauge(geom);
  make_weak_field_gauge(gauge, 0.25, 271828);
  HostSpinorField b(geom);
  make_random_spinor(b, 182845);

  // the paper's tolerance/delta pairs (Section VII-A): 1e-7 targets for
  // single-based modes, 1e-14-ish for double-based ones
  const Mode modes[] = {
      {"double", Precision::Double, std::nullopt, MixedStrategy::ReliableUpdates, 1e-12, 1e-5},
      {"single", Precision::Single, std::nullopt, MixedStrategy::ReliableUpdates, 3e-7, 1e-3},
      {"double-single", Precision::Double, Precision::Single, MixedStrategy::ReliableUpdates,
       1e-12, 1e-3},
      {"double-half", Precision::Double, Precision::Half, MixedStrategy::ReliableUpdates, 1e-12,
       1e-2},
      {"single-half", Precision::Single, Precision::Half, MixedStrategy::ReliableUpdates, 1e-7,
       1e-1},
      {"defect-corr s-h", Precision::Single, Precision::Half, MixedStrategy::DefectCorrection,
       1e-7, 1e-1},
  };

  std::printf("precision study: %s Wilson-clover, m = 0.05, csw = 1.0, 2 simulated GPUs\n\n",
              geom.dims().to_string().c_str());
  std::printf("%-18s %8s %9s %9s %14s %12s %10s\n", "mode", "iters", "updates", "restarts",
              "true |r|/|b|", "time (ms)", "Gflops");

  for (const Mode& m : modes) {
    InvertParams params;
    params.mass = 0.05;
    params.csw = 1.0;
    params.precision = m.outer;
    params.sloppy = m.sloppy;
    params.mixed_strategy = m.strategy;
    params.tol = m.tol;
    params.delta = m.delta;
    params.max_iter = 8000;

    HostSpinorField x(geom);
    const InvertResult r = invert_multi_gpu(sim::ClusterSpec::jlab_9g(2), gauge, b, x, params);
    std::printf("%-18s %8d %9d %9d %14.2e %12.2f %10.1f %s\n", m.label, r.stats.iterations,
                r.stats.reliable_updates, r.stats.restarts, r.stats.true_residual,
                r.simulated_time_us / 1e3, r.effective_gflops,
                r.stats.converged ? "" : "(NOT CONVERGED)");
  }

  std::printf("\nto reach double-precision accuracy, the half-sloppy mixed modes are far\n");
  std::printf("faster than uniform double -- the paper's production choice.  (On this tiny\n");
  std::printf("test volume the reliable-update overhead is a larger fraction than at the\n");
  std::printf("production volumes benchmarked in bench_fig4/5/6.)\n");
  return 0;
}
