// Propagator calculation, the measurement procedure of the paper's
// experiments (Section VII-A): the Chroma propagator code performs 6 linear
// solves per configuration -- one for each of the 3 color components of the
// upper 2 spin components -- and quotes performance averaged over the
// solves.
//
// This example runs that workload on a multi-GPU partition with the mixed
// single-half solver (the paper's production mode), prints per-solve and
// averaged statistics, and assembles the propagator columns.

#include "core/quda_api.h"
#include "dirac/gauge_init.h"

#include <cstdio>
#include <vector>

int main(int argc, char** argv) {
  using namespace quda;

  const int ranks = argc > 1 ? std::atoi(argv[1]) : 2;
  const Geometry geom({8, 8, 8, 16});
  std::printf("propagator: %s lattice on %d simulated GPUs, mixed single-half BiCGstab\n",
              geom.dims().to_string().c_str(), ranks);

  HostGaugeField gauge(geom);
  make_weak_field_gauge(gauge, 0.2, 777);

  InvertParams params;
  params.mass = 0.08;
  params.csw = 1.2;
  params.precision = Precision::Single;
  params.sloppy = Precision::Half;
  // the paper's single-half target is |r| = 1e-7 on much larger volumes;
  // on this small test system the single-precision floor sits close to
  // that, so we leave a little headroom
  params.tol = 3e-7;
  params.delta = 1e-1;
  params.max_iter = 4000;
  params.time_bc = TimeBoundary::Antiperiodic;

  const sim::ClusterSpec cluster = sim::ClusterSpec::jlab_9g(ranks);
  std::vector<HostSpinorField> propagator;
  double total_time_us = 0, total_gflops = 0;
  int total_iters = 0;
  bool all_converged = true;

  // 3 colors x upper 2 spins = the paper's 6 solves
  for (int spin = 0; spin < 2; ++spin) {
    for (int color = 0; color < 3; ++color) {
      HostSpinorField b(geom);
      make_point_source(b, {0, 0, 0, 0}, spin, color);
      HostSpinorField x(geom);
      const InvertResult r = invert_multi_gpu(cluster, gauge, b, x, params);
      std::printf("  solve (spin %d, color %d): %4d iters, %2d reliable updates, "
                  "%7.2f ms, %6.1f Gflops\n",
                  spin, color, r.stats.iterations, r.stats.reliable_updates,
                  r.simulated_time_us / 1e3, r.effective_gflops);
      all_converged = all_converged && r.stats.converged;
      total_time_us += r.simulated_time_us;
      total_gflops += r.effective_gflops;
      total_iters += r.stats.iterations;
      propagator.push_back(std::move(x));
    }
  }

  std::printf("\n  averages over the 6 solves (the paper's quoted quantity):\n");
  std::printf("    time      : %.2f ms\n", total_time_us / 6.0 / 1e3);
  std::printf("    sustained : %.1f effective Gflops\n", total_gflops / 6.0);
  std::printf("    iterations: %.1f\n", total_iters / 6.0);

  // a crude observable from the propagator columns: the pion correlator
  // C(t) = sum_x |S(x, t)|^2, summed over the computed columns
  std::printf("\n  pion-channel correlator from the 6 columns:\n");
  for (int t = 0; t < geom.dims().t; ++t) {
    double c = 0;
    for (const auto& col : propagator)
      for (std::int64_t i = 0; i < geom.volume(); ++i)
        if (geom.coords(i)[3] == t) c += norm2(col[i]);
    std::printf("    t = %2d : %.6e\n", t, c);
  }
  return all_converged ? 0 : 1;
}
