// Propagator calculation, the measurement procedure of the paper's
// experiments (Section VII-A): the Chroma propagator code performs 6 linear
// solves per configuration -- one for each of the 3 color components of the
// upper 2 spin components -- and quotes performance averaged over the
// solves.
//
// This example runs that workload on a multi-GPU partition with the mixed
// single-half solver (the paper's production mode), prints per-solve and
// averaged statistics, and assembles the propagator columns.

#include "core/quda_api.h"
#include "dirac/gauge_init.h"

#include <cstdio>
#include <vector>

int main(int argc, char** argv) {
  using namespace quda;

  // usage: propagator [ranks] [recon]  -- recon in {8, 12, 18} picks the
  // gauge-link storage (reals per link) for both solver levels
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 2;
  const int recon_reals = argc > 2 ? std::atoi(argv[2]) : 12;
  const Reconstruct recon = recon_reals == 8    ? Reconstruct::Eight
                            : recon_reals == 18 ? Reconstruct::Eighteen
                                                : Reconstruct::Twelve;
  const Geometry geom({8, 8, 8, 16});
  std::printf("propagator: %s lattice on %d simulated GPUs, mixed single-half BiCGstab, "
              "%d-real links\n",
              geom.dims().to_string().c_str(), ranks, reals_per_link(recon));

  HostGaugeField gauge(geom);
  make_weak_field_gauge(gauge, 0.2, 777);

  InvertParams params;
  params.mass = 0.08;
  params.csw = 1.2;
  params.precision = Precision::Single;
  params.sloppy = Precision::Half;
  // the paper's single-half target is |r| = 1e-7 on much larger volumes;
  // on this small test system the single-precision floor sits close to
  // that, so we leave a little headroom
  params.tol = 3e-7;
  params.delta = 1e-1;
  params.max_iter = 4000;
  params.time_bc = TimeBoundary::Antiperiodic;
  params.reconstruct = recon;
  params.reconstruct_sloppy = recon; // compress both solver levels alike

  sim::ClusterSpec cluster = sim::ClusterSpec::jlab_9g(ranks);
  cluster.telemetry.enabled = true; // flight recorder: per-solve summary below
  cluster.trace.enabled = true;     // in-memory trace feeds the busy-% gauges
  std::vector<HostSpinorField> propagator;
  double total_time_us = 0, total_gflops = 0;
  int total_iters = 0;
  bool all_converged = true;

  // 3 colors x upper 2 spins = the paper's 6 solves
  for (int spin = 0; spin < 2; ++spin) {
    for (int color = 0; color < 3; ++color) {
      HostSpinorField b(geom);
      make_point_source(b, {0, 0, 0, 0}, spin, color);
      HostSpinorField x(geom);
      const InvertResult r = invert_multi_gpu(cluster, gauge, b, x, params);
      std::printf("  solve (spin %d, color %d): %4d iters, %2d reliable updates, "
                  "%7.2f ms, %6.1f Gflops\n",
                  spin, color, r.stats.iterations, r.stats.reliable_updates,
                  r.simulated_time_us / 1e3, r.effective_gflops);
      // the flight recorder's view of the same solve (QUDA_SIM_TELEMETRY
      // would additionally export the full ledger as JSONL)
      if (r.telemetry.enabled) {
        const auto& gauges = r.telemetry.registry.gauges();
        const auto busy = gauges.find("busy_frac.mean");
        std::printf("    telemetry: %ld boundaries, final r2 %.2e, busy %.0f%%, "
                    "imbalance %.2f, %ld anomalies\n",
                    r.telemetry.iterations(),
                    r.telemetry.ledger.empty() ? 0.0 : r.telemetry.ledger.back().r2,
                    busy != gauges.end() ? 100.0 * busy->second : 0.0,
                    r.telemetry.load_imbalance, r.telemetry.anomaly_count());
      }
      all_converged = all_converged && r.stats.converged;
      total_time_us += r.simulated_time_us;
      total_gflops += r.effective_gflops;
      total_iters += r.stats.iterations;
      propagator.push_back(std::move(x));
    }
  }

  std::printf("\n  averages over the 6 solves (the paper's quoted quantity):\n");
  std::printf("    time      : %.2f ms\n", total_time_us / 6.0 / 1e3);
  std::printf("    sustained : %.1f effective Gflops\n", total_gflops / 6.0);
  std::printf("    iterations: %.1f\n", total_iters / 6.0);

  // gauge storage of the chosen reconstruction vs full 18-real links: the
  // memory the compression buys back on each device
  {
    HostSpinorField b(geom), x(geom);
    make_point_source(b, {0, 0, 0, 0}, 0, 0);
    // allocation probes: one iteration each, convergence is irrelevant
    InvertParams probe = params;
    probe.max_iter = 1;
    const std::int64_t recon_bytes = invert_multi_gpu(cluster, gauge, b, x, probe)
                                         .gauge_device_bytes;
    probe.reconstruct = Reconstruct::Eighteen;
    probe.reconstruct_sloppy = Reconstruct::Eighteen;
    const std::int64_t full_bytes = invert_multi_gpu(cluster, gauge, b, x, probe)
                                        .gauge_device_bytes;
    std::printf("    gauge mem : %.2f MB/rank at %d reals (%.1f%% saved vs 18-real's %.2f MB)\n",
                recon_bytes / 1048576.0, reals_per_link(recon),
                100.0 * (1.0 - double(recon_bytes) / double(full_bytes)),
                full_bytes / 1048576.0);
  }

  // a crude observable from the propagator columns: the pion correlator
  // C(t) = sum_x |S(x, t)|^2, summed over the computed columns
  std::printf("\n  pion-channel correlator from the 6 columns:\n");
  for (int t = 0; t < geom.dims().t; ++t) {
    double c = 0;
    for (const auto& col : propagator)
      for (std::int64_t i = 0; i < geom.volume(); ++i)
        if (geom.coords(i)[3] == t) c += norm2(col[i]);
    std::printf("    t = %2d : %.6e\n", t, c);
  }
  return all_converged ? 0 : 1;
}
