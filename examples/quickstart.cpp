// Quickstart: solve a Wilson-clover system on one (simulated) GPU.
//
//   1. build a lattice and a weak-field gauge configuration,
//   2. pick solver parameters (mass, csw, precision, tolerance),
//   3. call invert(),
//   4. verify the returned solution against the operator.
//
// Fields cross the API boundary in the DeGrand-Rossi basis, as they would
// when called from Chroma/QDP++.

#include "core/quda_api.h"
#include "dirac/gauge_init.h"

#include <cstdio>

int main() {
  using namespace quda;

  // a small lattice so the real arithmetic runs in moments on a host core
  const Geometry geom({8, 8, 8, 16});
  std::printf("quickstart: %s lattice, Wilson-clover\n", geom.dims().to_string().c_str());

  HostGaugeField gauge(geom);
  make_weak_field_gauge(gauge, 0.2, /*seed=*/12345);
  std::printf("  average plaquette: %.4f\n", average_plaquette(gauge));

  HostSpinorField b(geom);
  make_point_source(b, {0, 0, 0, 0}, /*spin=*/0, /*color=*/0);

  InvertParams params;
  params.mass = 0.05;
  params.csw = 1.0;
  params.precision = Precision::Double;
  params.tol = 1e-10;
  params.max_iter = 2000;

  HostSpinorField x(geom);
  const InvertResult result = invert(gauge, b, x, params);

  std::printf("  solver: %s\n", result.stats.summary().c_str());
  std::printf("  simulated GPU time: %.2f ms, sustained %.1f effective Gflops\n",
              result.simulated_time_us / 1e3, result.effective_gflops);
  std::printf("  device memory used: %.1f MiB\n",
              static_cast<double>(result.device_bytes_peak) / (1 << 20));

  // independent residual check through the matrix-application entry point
  HostSpinorField mx(geom);
  apply_matrix_multi_gpu(sim::ClusterSpec::jlab_9g(1), gauge, x, mx, params);
  double num = 0, den = 0;
  for (std::int64_t i = 0; i < geom.volume(); ++i) {
    num += norm2(mx[i] - b[i]);
    den += norm2(b[i]);
  }
  std::printf("  verified |Mx - b| / |b| = %.2e\n", std::sqrt(num / den));
  return result.stats.converged ? 0 : 1;
}
